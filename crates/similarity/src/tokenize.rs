//! Tokenizers and string normalization shared by the similarity measures.

/// Lower-case a string and replace every non-alphanumeric character with a
/// space. This is the canonical normalization applied before tokenizing.
///
/// Lowercasing is the full Unicode char-wise mapping (`char::to_lowercase`,
/// no locale/context rules), so `"CAFÉ"` normalizes to `"café"` — not the
/// ASCII-only mapping that used to leave accented uppercase intact and
/// silently weakened every token-based measure on accented data. A char
/// whose lowercase expands to several scalars ('İ' → `"i\u{307}"`) keeps
/// every output scalar, so normalized strings can be longer than the input.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_alphanumeric() {
            out.extend(c.to_lowercase());
        } else {
            out.push(' ');
        }
    }
    out
}

/// Split a string into lower-cased alphanumeric word tokens.
///
/// `"Kingston HyperX 4GB!"` → `["kingston", "hyperx", "4gb"]`.
pub fn words(s: &str) -> Vec<String> {
    normalize(s)
        .split_whitespace()
        .map(|w| w.to_string())
        .collect()
}

/// Produce the multiset of character q-grams of the normalized string,
/// padded with `q - 1` leading and trailing `#` characters so short strings
/// still produce grams.
///
/// Padded q-grams are standard for approximate joins; they make the measure
/// sensitive to shared prefixes/suffixes.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q must be at least 1");
    let norm: String = normalize(s).split_whitespace().collect::<Vec<_>>().join(" ");
    if norm.is_empty() {
        return Vec::new();
    }
    let pad = "#".repeat(q - 1);
    let padded: Vec<char> = format!("{pad}{norm}{pad}").chars().collect();
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_strips() {
        assert_eq!(normalize("Kingston HyperX-4GB!"), "kingston hyperx 4gb ");
    }

    #[test]
    fn normalize_lowercases_non_ascii() {
        // The contract is full Unicode lowercasing, not ASCII-only: the
        // accented uppercase must fold, and multi-scalar expansions keep
        // every output scalar.
        assert_eq!(normalize("CAFÉ"), "café");
        assert_eq!(normalize("École!"), "école ");
        assert_eq!(normalize("İ"), "i\u{307}");
        assert_eq!(words("CAFÉ Crème"), vec!["café", "crème"]);
    }

    #[test]
    fn words_tokenizes() {
        assert_eq!(words("Kingston HyperX 4GB!"), vec!["kingston", "hyperx", "4gb"]);
        assert!(words("  !!  ").is_empty());
    }

    #[test]
    fn qgrams_pads() {
        let g = qgrams("ab", 3);
        assert_eq!(g, vec!["##a", "#ab", "ab#", "b##"]);
    }

    #[test]
    fn qgrams_empty_input() {
        assert!(qgrams("", 3).is_empty());
        assert!(qgrams("!!!", 3).is_empty());
    }

    #[test]
    fn qgrams_unigrams() {
        assert_eq!(qgrams("abc", 1), vec!["a", "b", "c"]);
    }
}
