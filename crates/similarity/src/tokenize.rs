//! Tokenizers and string normalization shared by the similarity measures.

/// Lower-case a string and replace every non-alphanumeric character with a
/// space. This is the canonical normalization applied before tokenizing.
pub fn normalize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                ' '
            }
        })
        .collect()
}

/// Split a string into lower-cased alphanumeric word tokens.
///
/// `"Kingston HyperX 4GB!"` → `["kingston", "hyperx", "4gb"]`.
pub fn words(s: &str) -> Vec<String> {
    normalize(s)
        .split_whitespace()
        .map(|w| w.to_string())
        .collect()
}

/// Produce the multiset of character q-grams of the normalized string,
/// padded with `q - 1` leading and trailing `#` characters so short strings
/// still produce grams.
///
/// Padded q-grams are standard for approximate joins; they make the measure
/// sensitive to shared prefixes/suffixes.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    assert!(q >= 1, "q must be at least 1");
    let norm: String = normalize(s).split_whitespace().collect::<Vec<_>>().join(" ");
    if norm.is_empty() {
        return Vec::new();
    }
    let pad = "#".repeat(q - 1);
    let padded: Vec<char> = format!("{pad}{norm}{pad}").chars().collect();
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_strips() {
        assert_eq!(normalize("Kingston HyperX-4GB!"), "kingston hyperx 4gb ");
    }

    #[test]
    fn words_tokenizes() {
        assert_eq!(words("Kingston HyperX 4GB!"), vec!["kingston", "hyperx", "4gb"]);
        assert!(words("  !!  ").is_empty());
    }

    #[test]
    fn qgrams_pads() {
        let g = qgrams("ab", 3);
        assert_eq!(g, vec!["##a", "#ab", "ab#", "b##"]);
    }

    #[test]
    fn qgrams_empty_input() {
        assert!(qgrams("", 3).is_empty());
        assert!(qgrams("!!!", 3).is_empty());
    }

    #[test]
    fn qgrams_unigrams() {
        assert_eq!(qgrams("abc", 1), vec!["a", "b", "c"]);
    }
}
