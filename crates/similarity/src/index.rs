//! Inverted-index probes for output-sensitive candidate generation.
//!
//! Blocking rules are conjunctions of threshold predicates over set
//! similarities (`jaccard_w <= t`, `cosine <= t`, …). A pair *survives* a
//! rule when at least one predicate fails, i.e. when some similarity is
//! strictly above its threshold — which is exactly a similarity-join
//! condition. This module turns the precomputed [`TableAnalysis`] token
//! ids (already sorted `u32` ranks over shared lexicographic pools) into
//! inverted indexes so those joins cost output-size work instead of an
//! `|A|·|B|` scan.
//!
//! Two index shapes:
//!
//! * [`InvertedIndex`] — CSR posting lists over one token space of one
//!   attribute, probed with PPJoin-family filters (length, prefix, and
//!   positional — see [`InvertedIndex::probe`]). One index serves any
//!   threshold because positions are stored for the *full* canonical
//!   token sequence and all pruning happens probe-side.
//! * [`ExactIndex`] — record ids sorted by collapsed normalized string,
//!   for equality joins (`exact_match > t` with `t < 1` means `== 1.0`).
//!
//! # Superset contract
//!
//! A probe must return every indexed record whose similarity with the
//! probe record is **strictly greater** than the threshold; returning
//! extra records is fine (callers re-verify candidates with the
//! bit-identical kernels of [`crate::analysis`]). All float bounds are
//! therefore slackened downward ([`min_overlap_above`]) so rounding can
//! only weaken a filter, never over-prune.
//!
//! # Determinism
//!
//! Index construction is a deterministic function of the analysis: no
//! hash-order iteration (vocabularies are sorted id vectors, postings are
//! CSR arrays filled in record order), no wall-clock, no randomness.
//! Probe output order is an implementation detail — callers sort the
//! final candidate list into row-major pair order.

use crate::analysis::{AttrView, TableAnalysis};
use crate::record::RecordId;

/// Which precomputed token set of an [`AttrView`] an index is built
/// over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenSpace {
    /// Distinct word-token ids (`word_ids`).
    Words,
    /// Distinct padded character 3-gram ids (`gram_ids`).
    Grams,
    /// Packed Soundex codes of the word tokens (`soundex_codes`).
    Soundex,
    /// Word ids carrying TF/IDF weight (`tfidf_ids`).
    TfIdf,
}

impl TokenSpace {
    /// Short lowercase name for reports and plans.
    pub fn name(self) -> &'static str {
        match self {
            TokenSpace::Words => "words",
            TokenSpace::Grams => "grams",
            TokenSpace::Soundex => "soundex",
            TokenSpace::TfIdf => "tfidf",
        }
    }
}

/// The similarity whose `> t` condition a probe must over-approximate.
/// Determines the overlap bounds used by the length/prefix/positional
/// filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetMeasure {
    /// `|x∩y| / |x∪y|` — also serves Soundex similarity, which is
    /// Jaccard over code sets with the same empty-set conventions.
    Jaccard,
    /// `2|x∩y| / (|x|+|y|)`.
    Dice,
    /// `|x∩y| / min(|x|,|y|)`.
    Overlap,
    /// Weighted cosine (TF/IDF): only the *necessary* condition
    /// "shares at least one token" is exploited (`dot > 0` needs a
    /// common term); size-based bounds do not apply to weighted sets.
    Cosine,
}

impl SetMeasure {
    /// Short lowercase name for reports and plans.
    pub fn name(self) -> &'static str {
        match self {
            SetMeasure::Jaccard => "jaccard",
            SetMeasure::Dice => "dice",
            SetMeasure::Overlap => "overlap",
            SetMeasure::Cosine => "cosine",
        }
    }
}

/// Sentinel size for records with no analysis (null / non-text value).
const NO_ANALYSIS: u32 = u32::MAX;

/// Smallest integer strictly greater than `v`, floored at 1, computed
/// with a downward slack so float rounding can only *weaken* the bound
/// (return a smaller required overlap than the exact real-arithmetic
/// value, never a larger one). Used for "overlap must exceed `v`"
/// requirements, where any candidate-losing error would break the
/// superset contract.
fn min_overlap_above(v: f64) -> u32 {
    let slack = v - 1e-9 * v.max(1.0);
    let f = slack.floor();
    if f < 0.0 {
        return 1;
    }
    // Overlap requirements are bounded by token-set sizes (well inside
    // u32), but saturate anyway: an impossibly large requirement simply
    // filters everything, which is safe.
    if f >= u32::MAX as f64 {
        u32::MAX
    } else {
        (f as u32).saturating_add(1)
    }
}

/// Minimum overlap required of the probe record alone (its partner's
/// size unknown) for `sim > t`. Every candidate pair must share at least
/// one token among the probe's canonical prefix of length
/// `|y| - this + 1` (prefix filter).
fn probe_required(measure: SetMeasure, t: f64, y: u32) -> u32 {
    match measure {
        // i > t·max(|x|,|y|) ≥ t·|y|.
        SetMeasure::Jaccard => min_overlap_above(t * y as f64),
        // 2i/(x+y) > t with x ≥ i  ⟹  i > t·y/(2−t).
        SetMeasure::Dice => min_overlap_above(t * y as f64 / (2.0 - t)),
        // min(|x|,|y|) can be 1, so only "shares a token" is required.
        SetMeasure::Overlap | SetMeasure::Cosine => 1,
    }
}

/// Minimum overlap required of a concrete `(x, y)` size pair for
/// `sim > t`. Always ≥ [`probe_required`] of either side, which is what
/// makes the positional filter sound against the probe-prefix cutoff.
fn required_overlap(measure: SetMeasure, t: f64, x: u32, y: u32) -> u32 {
    let (xf, yf) = (x as f64, y as f64);
    match measure {
        // i/(x+y−i) > t ⟹ i > t(x+y)/(1+t); also i > t·x and i > t·y.
        SetMeasure::Jaccard => min_overlap_above((t * (xf + yf) / (1.0 + t)).max(t * xf.max(yf))),
        // 2i/(x+y) > t ⟹ i > t(x+y)/2.
        SetMeasure::Dice => min_overlap_above(t * (xf + yf) / 2.0),
        // i/min > t ⟹ i > t·min(x,y).
        SetMeasure::Overlap => min_overlap_above(t * xf.min(yf)),
        SetMeasure::Cosine => 1,
    }
}

/// Inverted index over one token space of one attribute of one table
/// (the *indexed* side; by convention table A, probed per B record).
///
/// Layout is fully deterministic: `vocab` is the sorted distinct token
/// ids of the indexed table, postings are one CSR array filled by a
/// count/prefix-sum/scatter pass over records in ascending id order.
/// Tokens are canonically ordered by `(document frequency asc, id asc)`
/// — the standard PPJoin ordering that makes prefixes small where it
/// matters (rare tokens first).
#[derive(Debug)]
pub struct InvertedIndex {
    space: TokenSpace,
    attr: usize,
    /// Distinct token ids of the indexed table, sorted ascending.
    vocab: Vec<u32>,
    /// Document frequency per vocab entry.
    df: Vec<u32>,
    /// CSR offsets into `entries`; `len = vocab.len() + 1`.
    offsets: Vec<u32>,
    /// `(record, canonical position)` postings; within one token's list,
    /// records ascend.
    entries: Vec<(u32, u32)>,
    /// Token-set size per record (`NO_ANALYSIS` when the value is null).
    sizes: Vec<u32>,
    /// Records whose analysis exists but holds zero tokens (e.g.
    /// whitespace-only text). Their similarity to another empty set is
    /// 1.0 under every [`SetMeasure`], so they pair with empty probes.
    empties: Vec<u32>,
}

/// Reusable per-thread scratch for [`InvertedIndex::probe`]; avoids
/// re-allocating the stamp array (sized `|A|`) per probe record.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    /// Probe tokens keyed for canonical ordering:
    /// `(df, token id, vocab rank)`; rank is `u32::MAX` when the token
    /// does not occur in the indexed table.
    keyed: Vec<(u32, u32, u32)>,
    /// Last stamp per indexed record.
    seen: Vec<u32>,
    /// Current probe stamp; `seen[x] == stamp` ⟺ `x` already emitted.
    stamp: u32,
}

/// The token ids of `an` for `space` — a zero-copy slice into the
/// analysis arena (TF/IDF ids are their own slab segment, so even the
/// weighted space needs no extraction pass).
fn tokens_of<'a>(an: AttrView<'a>, space: TokenSpace) -> &'a [u32] {
    match space {
        TokenSpace::Words => an.word_ids(),
        TokenSpace::Grams => an.gram_ids(),
        TokenSpace::Soundex => an.soundex_codes(),
        TokenSpace::TfIdf => an.tfidf_ids(),
    }
}

impl InvertedIndex {
    /// Build the index over `attr` of `table` in the given token space.
    pub fn build(table: &TableAnalysis, attr: usize, space: TokenSpace) -> InvertedIndex {
        let n = table.len();
        let mut sizes = vec![NO_ANALYSIS; n];
        let mut empties = Vec::new();
        let mut per_record: Vec<&[u32]> = vec![&[]; n];
        let mut all: Vec<u32> = Vec::new();
        for r in 0..n {
            let Some(an) = table.attr(r as RecordId, attr) else {
                continue;
            };
            let toks = tokens_of(an, space);
            sizes[r] = toks.len() as u32;
            if toks.is_empty() {
                empties.push(r as u32);
            } else {
                all.extend_from_slice(toks);
                per_record[r] = toks;
            }
        }
        all.sort_unstable();
        all.dedup();
        let vocab = all;

        let mut df = vec![0u32; vocab.len()];
        for toks in &per_record {
            for t in *toks {
                // Tokens always hit: vocab was built from these lists.
                if let Ok(rank) = vocab.binary_search(t) {
                    df[rank] += 1;
                }
            }
        }

        // Canonical per-record order: (df asc, id asc). Replace each
        // record's token list by its vocab ranks in canonical order.
        let mut ranked: Vec<Vec<u32>> = Vec::with_capacity(n);
        for toks in &per_record {
            let mut ranks: Vec<u32> = toks
                .iter()
                .filter_map(|t| vocab.binary_search(t).ok().map(|r| r as u32))
                .collect();
            ranks.sort_unstable_by_key(|&r| (df[r as usize], vocab[r as usize]));
            ranked.push(ranks);
        }

        let mut offsets = vec![0u32; vocab.len() + 1];
        for ranks in &ranked {
            for &r in ranks {
                offsets[r as usize + 1] += 1;
            }
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor: Vec<u32> = offsets[..vocab.len()].to_vec();
        let mut entries = vec![(0u32, 0u32); *offsets.last().unwrap_or(&0) as usize];
        for (rec, ranks) in ranked.iter().enumerate() {
            for (pos, &r) in ranks.iter().enumerate() {
                entries[cursor[r as usize] as usize] = (rec as u32, pos as u32);
                cursor[r as usize] += 1;
            }
        }

        InvertedIndex { space, attr, vocab, df, offsets, entries, sizes, empties }
    }

    /// The token space this index was built over.
    pub fn space(&self) -> TokenSpace {
        self.space
    }

    /// The attribute index this index was built over.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Total posting entries (for perf reporting).
    pub fn postings(&self) -> usize {
        self.entries.len()
    }

    /// Append to `out` every indexed record whose `measure` similarity
    /// with the probe value **can** exceed `threshold` (a superset of
    /// the true result; see the module docs). `probe` is the analysis of
    /// the probe record's attribute value, `None` when that value is
    /// null — the similarity is then NaN and nothing matches.
    ///
    /// Requires `0.0 <= threshold < 1.0`. Appended records are deduped
    /// within this call (via `scratch`) but unsorted.
    pub fn probe(
        &self,
        probe: Option<AttrView<'_>>,
        measure: SetMeasure,
        threshold: f64,
        scratch: &mut ProbeScratch,
        out: &mut Vec<u32>,
    ) {
        debug_assert!((0.0..1.0).contains(&threshold), "probe threshold must be in [0,1)");
        let Some(an) = probe else {
            return;
        };
        let tokens = tokens_of(an, self.space);
        let y = tokens.len() as u32;
        if y == 0 {
            // Empty-vs-empty scores 1.0 (> t for every t < 1) under all
            // measures; empty-vs-nonempty scores 0.0 (never > t ≥ 0).
            out.extend_from_slice(&self.empties);
            return;
        }

        if scratch.seen.len() < self.sizes.len() {
            scratch.seen.resize(self.sizes.len(), 0);
        }
        scratch.stamp = scratch.stamp.wrapping_add(1);
        if scratch.stamp == 0 {
            scratch.seen.iter_mut().for_each(|s| *s = 0);
            scratch.stamp = 1;
        }

        // Canonical probe order: (df in the indexed table, id). Tokens
        // absent from the index get df 0 — they sort first and probe
        // nothing, but keeping them preserves the shared total order the
        // prefix theorem needs.
        scratch.keyed.clear();
        for &t in tokens {
            match self.vocab.binary_search(&t) {
                Ok(rank) => scratch.keyed.push((self.df[rank], t, rank as u32)),
                Err(_) => scratch.keyed.push((0, t, u32::MAX)),
            }
        }
        scratch.keyed.sort_unstable_by_key(|&(df, id, _)| (df, id));

        // Prefix filter: a qualifying pair shares a token among the
        // probe's first `y - probe_required + 1` canonical tokens.
        let alpha_y = probe_required(measure, threshold, y);
        if alpha_y > y {
            return;
        }
        let prefix_len = (y - alpha_y + 1) as usize;
        for (j, &(_, _, rank)) in scratch.keyed.iter().take(prefix_len).enumerate() {
            if rank == u32::MAX {
                continue;
            }
            let (lo, hi) = (self.offsets[rank as usize], self.offsets[rank as usize + 1]);
            for &(x, i) in &self.entries[lo as usize..hi as usize] {
                if scratch.seen[x as usize] == scratch.stamp {
                    continue;
                }
                let xs = self.sizes[x as usize];
                let alpha = required_overlap(measure, threshold, xs, y);
                // Length filter: the overlap can never reach `alpha`.
                if alpha > xs.min(y) {
                    continue;
                }
                // Positional filter: for the *first* common token the
                // remaining suffixes on both sides must still fit
                // `alpha` tokens. A failed position must NOT mark the
                // record seen — a later (qualifying) common token may
                // still admit it.
                if i <= xs - alpha && (j as u32) <= y - alpha {
                    scratch.seen[x as usize] = scratch.stamp;
                    out.push(x);
                }
            }
        }
    }
}

/// Equality-join index: record ids of one table sorted by the collapsed
/// normalized string of one attribute (records without analysis are
/// excluded; ties break by record id, so each equality run ascends).
#[derive(Debug)]
pub struct ExactIndex {
    attr: usize,
    sorted: Vec<u32>,
}

impl ExactIndex {
    /// Build the index over `attr` of `table`.
    pub fn build(table: &TableAnalysis, attr: usize) -> ExactIndex {
        let mut sorted: Vec<u32> = (0..table.len() as u32)
            .filter(|&r| table.attr(r, attr).is_some())
            .collect();
        sorted.sort_unstable_by(|&p, &q| {
            collapsed_of(table, p, attr)
                .cmp(collapsed_of(table, q, attr))
                .then(p.cmp(&q))
        });
        ExactIndex { attr, sorted }
    }

    /// The attribute index this index was built over.
    pub fn attr(&self) -> usize {
        self.attr
    }

    /// Append to `out` (in ascending record order) every indexed record
    /// whose collapsed string equals `needle`. `table` must be the
    /// analysis the index was built from.
    pub fn matches(&self, table: &TableAnalysis, needle: &str, out: &mut Vec<u32>) {
        let lo = self
            .sorted
            .partition_point(|&r| collapsed_of(table, r, self.attr) < needle);
        for &r in &self.sorted[lo..] {
            if collapsed_of(table, r, self.attr) != needle {
                break;
            }
            out.push(r);
        }
    }
}

fn collapsed_of(table: &TableAnalysis, rec: u32, attr: usize) -> &str {
    table
        .attr(rec, attr)
        .expect("ExactIndex only holds records with analysis")
        .collapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{self, analyze_task};
    use crate::cosine::TfIdfModel;
    use crate::record::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn analyzed(vals_a: &[&str], vals_b: &[&str]) -> crate::analysis::TaskAnalysis {
        let schema = Arc::new(Schema::new(vec![Attribute::text("t")]));
        let rows = |vals: &[&str]| -> Vec<Vec<Value>> {
            vals.iter().map(|&s| vec![Value::Text(s.into())]).collect()
        };
        let a = Table::new("a", schema.clone(), rows(vals_a));
        let b = Table::new("b", schema, rows(vals_b));
        let docs = vals_a.iter().copied().chain(vals_b.iter().copied());
        let model = Some(TfIdfModel::fit(docs));
        analyze_task(&a, &b, &[model], exec::Threads::new(2))
    }

    const VALS_A: &[&str] = &[
        "kingston hyperx 4gb memory kit",
        "kingston valueram 4gb",
        "corsair vengeance 8gb memory",
        "",
        "   ",
        "samsung evo ssd",
        "kingston hyperx",
    ];
    const VALS_B: &[&str] = &[
        "kingston hyperx 4gb kit",
        "corsair 8gb",
        "",
        "totally different tokens here",
        "samsung evo ssd",
    ];

    fn sim(an: &crate::analysis::TaskAnalysis, measure: SetMeasure, space: TokenSpace, x: u32, y: u32) -> f64 {
        let (ra, rb) = (an.attr_a(x, 0).unwrap(), an.attr_b(y, 0).unwrap());
        match (measure, space) {
            (SetMeasure::Jaccard, TokenSpace::Words) => analysis::jaccard_ids(ra.word_ids(), rb.word_ids()),
            (SetMeasure::Jaccard, TokenSpace::Grams) => analysis::jaccard_ids(ra.gram_ids(), rb.gram_ids()),
            (SetMeasure::Jaccard, TokenSpace::Soundex) => analysis::soundex_pre(ra, rb),
            (SetMeasure::Dice, TokenSpace::Words) => analysis::dice_ids(ra.word_ids(), rb.word_ids()),
            (SetMeasure::Overlap, TokenSpace::Words) => analysis::overlap_ids(ra.word_ids(), rb.word_ids()),
            (SetMeasure::Cosine, TokenSpace::TfIdf) => analysis::cosine_pre(ra, rb),
            _ => unreachable!("untested combination"),
        }
    }

    #[test]
    fn probe_is_superset_of_true_survivors() {
        let an = analyzed(VALS_A, VALS_B);
        let combos = [
            (SetMeasure::Jaccard, TokenSpace::Words),
            (SetMeasure::Jaccard, TokenSpace::Grams),
            (SetMeasure::Jaccard, TokenSpace::Soundex),
            (SetMeasure::Dice, TokenSpace::Words),
            (SetMeasure::Overlap, TokenSpace::Words),
            (SetMeasure::Cosine, TokenSpace::TfIdf),
        ];
        for (measure, space) in combos {
            let idx = InvertedIndex::build(&an.a, 0, space);
            let mut scratch = ProbeScratch::default();
            for t in [0.0, 0.1, 0.3, 0.5, 0.8, 0.95] {
                for y in 0..VALS_B.len() as u32 {
                    let mut got = Vec::new();
                    idx.probe(an.attr_b(y, 0), measure, t, &mut scratch, &mut got);
                    got.sort_unstable();
                    // No duplicates from a single probe.
                    let mut dd = got.clone();
                    dd.dedup();
                    assert_eq!(got, dd, "{measure:?}/{space:?} t={t} y={y}: dup candidates");
                    for x in 0..VALS_A.len() as u32 {
                        let s = sim(&an, measure, space, x, y);
                        if s > t {
                            assert!(
                                got.binary_search(&x).is_ok(),
                                "{measure:?}/{space:?} t={t}: pair ({x},{y}) sim={s} missing"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_probe_pairs_with_empty_indexed_records() {
        let an = analyzed(VALS_A, VALS_B);
        let idx = InvertedIndex::build(&an.a, 0, TokenSpace::Words);
        let mut scratch = ProbeScratch::default();
        let mut got = Vec::new();
        // B record 2 is "" — empty token set.
        idx.probe(an.attr_b(2, 0), SetMeasure::Jaccard, 0.5, &mut scratch, &mut got);
        got.sort_unstable();
        // A records 3 ("") and 4 (whitespace) have empty word sets.
        assert_eq!(got, vec![3, 4]);
    }

    #[test]
    fn null_probe_matches_nothing() {
        let an = analyzed(VALS_A, VALS_B);
        let idx = InvertedIndex::build(&an.a, 0, TokenSpace::Words);
        let mut scratch = ProbeScratch::default();
        let mut got = Vec::new();
        idx.probe(None, SetMeasure::Jaccard, 0.0, &mut scratch, &mut got);
        assert!(got.is_empty());
    }

    #[test]
    fn exact_index_finds_equal_collapsed_strings() {
        let an = analyzed(
            &["data  mining", "databases", "data mining", ""],
            &["data mining", "nothing alike", ""],
        );
        let idx = ExactIndex::build(&an.a, 0);
        let mut out = Vec::new();
        // "data  mining" collapses to "data mining" — records 0 and 2.
        idx.matches(&an.a, "data mining", &mut out);
        assert_eq!(out, vec![0, 2]);
        out.clear();
        idx.matches(&an.a, "", &mut out);
        assert_eq!(out, vec![3]);
        out.clear();
        idx.matches(&an.a, "absent", &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn probe_scratch_stamps_do_not_leak_across_probes() {
        let an = analyzed(VALS_A, VALS_B);
        let idx = InvertedIndex::build(&an.a, 0, TokenSpace::Words);
        let mut scratch = ProbeScratch::default();
        let mut first = Vec::new();
        idx.probe(an.attr_b(0, 0), SetMeasure::Jaccard, 0.1, &mut scratch, &mut first);
        let mut again = Vec::new();
        idx.probe(an.attr_b(0, 0), SetMeasure::Jaccard, 0.1, &mut scratch, &mut again);
        first.sort_unstable();
        again.sort_unstable();
        assert_eq!(first, again, "same probe must give the same candidates");
    }
}
