//! Bit-parallel and scratch-buffer char-level kernels over precomputed
//! analyses.
//!
//! The set kernels of [`crate::analysis`] made blocking-rule application
//! hardware-fast, which left full-pair vectorization dominated by the five
//! char-level measures — Levenshtein, Jaro, Jaro-Winkler, Monge-Elkan, and
//! Smith-Waterman — each of which re-collected `Vec<char>`s (and for
//! Smith-Waterman re-lowercased, for Monge-Elkan re-tokenized) per pair.
//! This module reimplements all five over the interned char-id sequences
//! the analysis layer precomputes, with zero per-pair allocation:
//!
//! * **Levenshtein** runs Myers' bit-parallel algorithm (u64 blocks,
//!   multi-word for patterns over 64 chars, common prefix/suffix
//!   trimming): `O(⌈m/64⌉·n)` word operations instead of `O(m·n)` cell
//!   updates, and the exact integer distance of the reference DP.
//! * **Jaro / Jaro-Winkler** match through per-char availability
//!   bitmasks: each `a` char finds the lowest untaken matching `b`
//!   position in its window with a find-first-set instead of a linear
//!   scan — `O(n·⌈n/64⌉)` instead of `O(n·window)`.
//! * **Monge-Elkan** walks the precomputed token ranges (occurrence
//!   order, duplicates kept — exactly what `tokenize::words` yields) with
//!   the bitset Jaro-Winkler as its inner measure, deduping repeated
//!   tokens on both sides (a max-fold is idempotent and order-free over
//!   finite scores, and identical tokens score an exact 1.0).
//! * **Smith-Waterman** rolls two reusable `i32` DP rows with
//!   carried-diagonal, bounds-check-free inner cells over the
//!   precomputed lowercased sequences.
//!
//! # Bit-identity contract
//!
//! Every kernel returns the **exact bits** of its string-path reference
//! (`edit`, `jaro`, `monge_elkan`, `align`), under the same contract as
//! the set kernels:
//!
//! * Char ids are ranks into a shared pool, so id equality is char
//!   equality — and equality is the *only* char operation any of these
//!   measures performs.
//! * Myers computes the same exact integer distance as the reference DP
//!   (affix trimming cannot change unit-cost edit distance), so
//!   `1 - d/max` is the identical f64 expression on identical integers.
//!   Likewise Smith-Waterman's integer score and `(s/max).clamp(..)`.
//! * Jaro's bitset matching selects the same `b` position for each `a`
//!   char as the reference's greedy window scan (the lowest untaken
//!   match), so its match/transposition counts are identical integers.
//!   Monge-Elkan's token dedup leaves every per-token fold equal to its
//!   true maximum (see `monge_elkan_dir` for the argument) and sums
//!   per-occurrence terms in the reference's order.
//!
//! The property suite (`tests/analysis_equivalence.rs`) enforces this
//! with `f64::to_bits` equality over arbitrary inputs, including
//! combining marks and strings crossing the 64-char word boundary, and
//! `bench --bin blocking_perf` asserts it in-bin on full datasets
//! (`char_equivalence=ok`, grepped by CI).
//!
//! Scratch buffers are per-thread (`thread_local!`); kernel outputs never
//! depend on scratch history (every call fully overwrites the regions it
//! reads), so the determinism contract is untouched.

use crate::analysis::AttrView;
use std::cell::RefCell;

/// Reusable per-thread scratch for the char kernels. All buffers grow to
/// the high-water mark of the thread's workload and are reused across
/// calls; no kernel output depends on their prior contents.
#[derive(Default)]
pub struct CharScratch {
    /// Positional bitmask table, `pool × words`, direct-indexed by global
    /// char id: row `c` holds the positions of char `c` in the current
    /// subject string. Zeroed wholesale per build (it is a few KiB), so
    /// absent chars read an all-zero row with no mapping layer at all.
    /// Shared by the per-pair builds (Myers Peq, Jaro availability).
    peq: Vec<u64>,
    /// Persistent Myers Peq table for the Levenshtein *pattern* side.
    /// Candidate streams arrive grouped by the left record, so the table
    /// is rebuilt only when `(pat_gen, pat_value_id)` changes and
    /// amortizes across a whole run of pairs.
    pat_peq: Vec<u64>,
    pat_gen: u64,
    pat_value_id: u32,
    /// Myers vertical-delta bit vectors, one u64 per 64-row block.
    pv: Vec<u64>,
    mv: Vec<u64>,
    /// Jaro: bitmask of taken `b` positions and matched `a` chars.
    taken: Vec<u64>,
    a_matches: Vec<u32>,
    /// Monge-Elkan: best inner score per distinct `a` token, indexed by
    /// the precomputed `word_dedup_rank` (NaN = not yet computed).
    me_a_best: Vec<f64>,
    /// Direct-mapped result cache keyed by `(kernel tag, id, id)` — whole
    /// values through `AttrView::value_id`, Monge-Elkan inner token
    /// pairs through word-pool ids. Attribute values (cities, brands,
    /// venues) and token pairs recur across record pairs far more often
    /// than records do, and id equality is input equality, so a hit
    /// returns the exact bits a recompute would. Collisions simply evict.
    cache_keys: Vec<u64>,
    cache_vals: Vec<f64>,
    /// `TaskAnalysis::generation` the cache's entries belong to. Ids are
    /// ranks into per-task pools, so entries from another analysis build
    /// must never hit; a generation change flushes the cache.
    cache_gen: u64,
    /// Smith-Waterman rolling DP rows (row form) / rolling anti-diagonals
    /// plus the reversed-`b` buffer (diagonal form).
    sw_prev: Vec<i32>,
    sw_cur: Vec<i32>,
    sw_diag: Vec<i32>,
    sw_brev: Vec<u32>,
    /// 16-bit twins of the Smith-Waterman buffers. Halving the cell
    /// width doubles the lanes the auto-vectorizer packs per register,
    /// and the scores fit: every DP value is bounded by `2·min(|a|,|b|)`
    /// and the row form's scanned offset by `3·|b|`, both within `i16`
    /// under the [`SW_I16_MAX_LEN`] dispatch gate.
    sw_prev16: Vec<i16>,
    sw_cur16: Vec<i16>,
    sw_diag16: Vec<i16>,
    sw_brev16: Vec<i16>,
}

thread_local! {
    static SCRATCH: RefCell<CharScratch> = RefCell::new(CharScratch::default());
}

/// Run `f` with the calling thread's scratch. The `*_pre` kernels call
/// it internally; `FeatureVectorizer::vectorize_pre` calls it once per
/// pair and feeds the `*_pre_s` variants to amortize the `thread_local`
/// access across a whole feature vector.
#[inline]
pub(crate) fn with_scratch<T>(f: impl FnOnce(&mut CharScratch) -> T) -> T {
    SCRATCH.with(|s| f(&mut s.borrow_mut()))
}

// ---- per-thread result cache ---------------------------------------------

/// Cache geometry: 2^18 direct-mapped slots (4 MiB per thread — sized so
/// the distinct token-pair working set of a large dataset doesn't thrash
/// the direct mapping; an L2-resident 2^14 table measured no faster on
/// misses and lost the cross-kind hits).
const CACHE_BITS: u32 = 18;
/// Bits reserved per id in a packed key; ids at or above `1 << ID_BITS`
/// bypass the cache (correct, just uncached).
const ID_BITS: u32 = 24;
/// Key tags, one per cached kernel. Tag 0 is never used, so the all-ones
/// empty-slot sentinel can't collide with a real key.
const TAG_LEV: u64 = 1;
const TAG_JARO: u64 = 2;
const TAG_JW: u64 = 3;
const TAG_ME: u64 = 4;
const TAG_SW: u64 = 5;
/// Monge-Elkan inner token-pair scores (word-pool ids, not value ids).
const TAG_ME_TOKEN: u64 = 6;
const EMPTY_KEY: u64 = u64::MAX;

/// Compute-through-cache: return the cached result for
/// `(tag, ida, idb)` within analysis build `gen`, or run `f` once and
/// remember its bits. Only exact key matches from the same generation
/// hit, and both id spaces are injective into their inputs within a
/// generation, so the cache can only ever substitute a value `f` itself
/// would return — determinism (and the bit-identity contract) is
/// unaffected by hit patterns, thread counts, or evictions.
#[inline]
fn cached(
    s: &mut CharScratch,
    gen: u64,
    tag: u64,
    ida: u32,
    idb: u32,
    f: impl FnOnce(&mut CharScratch) -> f64,
) -> f64 {
    if (ida | idb) >> ID_BITS != 0 {
        return f(s);
    }
    if s.cache_keys.is_empty() {
        s.cache_keys.resize(1 << CACHE_BITS, EMPTY_KEY);
        s.cache_vals.resize(1 << CACHE_BITS, 0.0);
    }
    if s.cache_gen != gen {
        s.cache_keys.fill(EMPTY_KEY);
        s.cache_gen = gen;
    }
    let key = (tag << (2 * ID_BITS)) | (u64::from(ida) << ID_BITS) | u64::from(idb);
    let slot = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> (64 - CACHE_BITS)) as usize;
    if s.cache_keys[slot] == key {
        return s.cache_vals[slot];
    }
    let v = f(s);
    s.cache_keys[slot] = key;
    s.cache_vals[slot] = v;
    v
}

// ---- Myers bit-parallel edit distance ------------------------------------

/// Exact Levenshtein distance between two interned char-id sequences via
/// Myers' bit-parallel algorithm. `pool` is the char intern-pool size
/// (every id in `a` and `b` is `< pool`).
///
/// Identical common prefixes and suffixes are trimmed first (unit-cost
/// edit distance is invariant under shared-affix removal), the shorter
/// remainder becomes the pattern, and the bit matrix runs over
/// `⌈m/64⌉` u64 blocks with carry propagation between blocks — the
/// blocked formulation of Myers (1999) as corrected by Hyyrö.
pub fn myers_distance(a: &[u32], b: &[u32], pool: usize, s: &mut CharScratch) -> usize {
    // Shared-affix trim: often collapses near-duplicates to a few chars
    // and drops long inputs into the single-word fast path.
    let prefix = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
    let (a, b) = (&a[prefix..], &b[prefix..]);
    let suffix = a
        .iter()
        .rev()
        .zip(b.iter().rev())
        .take_while(|(x, y)| x == y)
        .count();
    let (a, b) = (&a[..a.len() - suffix], &b[..b.len() - suffix]);
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }

    // Distance is symmetric; the shorter side as pattern minimizes words.
    let (pat, text) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let m = pat.len();
    let words = m.div_ceil(64);
    build_peq(pat, pool, words, &mut s.peq);
    match words {
        1 => myers_64(&s.peq, text, m),
        2 => myers_128(&s.peq, text, m),
        _ => myers_blocked(&s.peq, &mut s.pv, &mut s.mv, text, m, words),
    }
}

/// Myers through the persistent pattern table: `a` is always the
/// pattern, and its Peq table survives in the scratch until a different
/// value (or analysis generation) shows up. Candidate streams arrive
/// grouped by the left record, so the build amortizes across a whole run
/// of pairs. Affix trimming is skipped — a trim would shift the pattern
/// masks per pair, defeating the reuse — and fixing the pattern side is
/// sound because unit-cost edit distance is symmetric: the same integer
/// comes out whichever side drives the bit matrix.
fn myers_distance_pat(
    a: AttrView<'_>,
    b: AttrView<'_>,
    pool: usize,
    gen: u64,
    s: &mut CharScratch,
) -> usize {
    let (pat, text) = (a.raw_char_ids(), b.raw_char_ids());
    if pat.is_empty() {
        return text.len();
    }
    if text.is_empty() {
        return pat.len();
    }
    let m = pat.len();
    let words = m.div_ceil(64);
    if s.pat_gen != gen || s.pat_value_id != a.value_id() {
        build_peq(pat, pool, words, &mut s.pat_peq);
        s.pat_gen = gen;
        s.pat_value_id = a.value_id();
    }
    match words {
        1 => myers_64(&s.pat_peq, text, m),
        2 => myers_128(&s.pat_peq, text, m),
        _ => myers_blocked(&s.pat_peq, &mut s.pv, &mut s.mv, text, m, words),
    }
}

/// (Re)build a direct-indexed positional bitmask table over `seq`: row
/// `c` (of `words` u64s) gets a bit per position of char `c`. The whole
/// `pool × words` table is zeroed first — it is a few KiB, so the memset
/// is cheaper than any dedup/cleanup bookkeeping — leaving absent chars
/// with all-zero rows.
#[inline]
fn build_peq(seq: &[u32], pool: usize, words: usize, peq: &mut Vec<u64>) {
    let need = pool * words;
    if peq.len() < need {
        peq.resize(need, 0);
    }
    peq[..need].fill(0);
    for (i, &cid) in seq.iter().enumerate() {
        peq[cid as usize * words + i / 64] |= 1u64 << (i % 64);
    }
}

/// Single-word Myers: pattern fits one u64 (`m ≤ 64`). `peq` is
/// direct-indexed by char id; absent chars hold all-zero rows, so the
/// lookup is branch-free.
#[inline]
fn myers_64(peq: &[u64], text: &[u32], m: usize) -> usize {
    let mut pv = !0u64;
    let mut mv = 0u64;
    let mut score = m as i64;
    let top = 1u64 << (m - 1);
    for &tc in text {
        let eq = peq[tc as usize];
        let xv = eq | mv;
        let xh = (((eq & pv).wrapping_add(pv)) ^ pv) | eq;
        let ph = mv | !(xh | pv);
        let mh = pv & xh;
        if ph & top != 0 {
            score += 1;
        }
        if mh & top != 0 {
            score -= 1;
        }
        let ph = (ph << 1) | 1;
        let mh = mh << 1;
        pv = mh | !(xv | ph);
        mv = ph & xv;
    }
    score as usize
}

/// Two-word Myers (`64 < m ≤ 128`): the blocked recurrence with both
/// blocks' bit vectors held in registers instead of scratch slices —
/// the same per-block steps as [`myers_blocked`] with `words == 2`,
/// fully unrolled (block 0 always enters with `hin = +1`).
#[inline]
fn myers_128(peq: &[u64], text: &[u32], m: usize) -> usize {
    let (mut pv0, mut pv1) = (!0u64, !0u64);
    let (mut mv0, mut mv1) = (0u64, 0u64);
    let mut score = m as i64;
    let top = 1u64 << ((m - 1) % 64);
    const HIGH: u64 = 1u64 << 63;
    for &tc in text {
        let base = tc as usize * 2;
        let eq = peq[base];
        let xv = eq | mv0;
        let xh = (((eq & pv0).wrapping_add(pv0)) ^ pv0) | eq;
        let ph = mv0 | !(xh | pv0);
        let mh = pv0 & xh;
        let mut hin: i32 = 0;
        if ph & HIGH != 0 {
            hin = 1;
        } else if mh & HIGH != 0 {
            hin = -1;
        }
        let ph = (ph << 1) | 1;
        let mh = mh << 1;
        pv0 = mh | !(xv | ph);
        mv0 = ph & xv;

        let eq = peq[base + 1];
        let hin_neg = u64::from(hin < 0);
        let eq_in = eq | hin_neg;
        let xv = eq | mv1;
        let xh = (((eq_in & pv1).wrapping_add(pv1)) ^ pv1) | eq_in;
        let ph = mv1 | !(xh | pv1);
        let mh = pv1 & xh;
        if ph & top != 0 {
            score += 1;
        } else if mh & top != 0 {
            score -= 1;
        }
        let ph = (ph << 1) | u64::from(hin > 0);
        let mh = (mh << 1) | hin_neg;
        pv1 = mh | !(xv | ph);
        mv1 = ph & xv;
    }
    score as usize
}

/// Blocked Myers for patterns over 64 chars: per text char, sweep the
/// `words` blocks bottom-up, chaining the horizontal delta (−1/0/+1)
/// through each block boundary; the score is tracked at the pattern's
/// true last row (bit `(m−1) mod 64` of the last block).
fn myers_blocked(
    peq: &[u64],
    pvs: &mut Vec<u64>,
    mvs: &mut Vec<u64>,
    text: &[u32],
    m: usize,
    words: usize,
) -> usize {
    if pvs.len() < words {
        pvs.resize(words, 0);
        mvs.resize(words, 0);
    }
    pvs[..words].fill(!0u64);
    mvs[..words].fill(0);
    let mut score = m as i64;
    let last = words - 1;
    let top = 1u64 << ((m - 1) % 64);
    const HIGH: u64 = 1u64 << 63;
    for &tc in text {
        let eq_base = tc as usize * words;
        // Horizontal delta entering block 0 is the first matrix row's
        // +1-per-column boundary.
        let mut hin: i32 = 1;
        for w in 0..words {
            // Bits of the last block above the pattern's top row carry
            // garbage; additions only carry upward and the score reads
            // `top`, so they never contaminate live cells. Absent text
            // chars read all-zero Peq rows.
            let eq = peq[eq_base + w];
            let pv = pvs[w];
            let mv = mvs[w];
            let hin_neg = u64::from(hin < 0);
            let eq_in = eq | hin_neg;
            let xv = eq | mv;
            let xh = (((eq_in & pv).wrapping_add(pv)) ^ pv) | eq_in;
            let ph = mv | !(xh | pv);
            let mh = pv & xh;
            let hbit = if w == last { top } else { HIGH };
            let mut hout: i32 = 0;
            if ph & hbit != 0 {
                hout = 1;
            } else if mh & hbit != 0 {
                hout = -1;
            }
            let ph = (ph << 1) | u64::from(hin > 0);
            let mh = (mh << 1) | hin_neg;
            pvs[w] = mh | !(xv | ph);
            mvs[w] = ph & xv;
            hin = hout;
        }
        score += i64::from(hin);
    }
    score as usize
}

/// Normalized Levenshtein over precomputed raw char ids; bit-identical to
/// `edit::levenshtein_similarity` on the raw strings. `pool` is
/// `AnalysisStats::distinct_chars`.
#[inline]
pub fn levenshtein_pre(a: AttrView<'_>, b: AttrView<'_>, pool: usize, gen: u64) -> f64 {
    with_scratch(|s| levenshtein_pre_s(a, b, pool, gen, s))
}

/// [`levenshtein_pre`] over a caller-held scratch.
pub(crate) fn levenshtein_pre_s(
    a: AttrView<'_>,
    b: AttrView<'_>,
    pool: usize,
    gen: u64,
    s: &mut CharScratch,
) -> f64 {
    cached(s, gen, TAG_LEV, a.value_id(), b.value_id(), |s| {
        let max = a.raw_char_ids().len().max(b.raw_char_ids().len());
        if max == 0 {
            return 1.0;
        }
        let d = myers_distance_pat(a, b, pool, gen, s);
        1.0 - d as f64 / max as f64
    })
}

// ---- Jaro / Jaro-Winkler -------------------------------------------------

/// Jaro similarity over char-id slices via bitset matching: one
/// availability bitmask row per pool char (direct-indexed, like the
/// Myers Peq) lets each `a` char find its match with a find-first-set
/// over one or two words instead of a linear window scan.
///
/// The greedy semantics are the reference's exactly — the lowest untaken
/// matching `b` position inside the window, processed in `a` order — so
/// the match set, the transposition count, and the final expression are
/// bit-identical to `jaro::jaro`.
fn jaro_ids(a: &[u32], b: &[u32], pool: usize, s: &mut CharScratch) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    if a == b {
        // Greedy matching on identical sequences pairs every position
        // with itself: m = |a| = |b|, t = 0, and each of the reference's
        // three ratios is an exact 1.0.
        return 1.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);

    // Short inputs (word tokens, codes): the plain window scan beats the
    // availability-row build, whose fixed cost is a pool-sized table
    // clear. It *is* the reference scan, so the match set is trivially
    // identical.
    if b.len() <= 8 {
        let mut taken = 0u64;
        s.a_matches.clear();
        for (i, &ca) in a.iter().enumerate() {
            let hi = (i + window + 1).min(b.len());
            // An `a` position past the window's reach yields an empty
            // slice (lo clamped to hi), matching the empty range scan.
            let lo = i.saturating_sub(window).min(hi);
            for (off, &cb) in b[lo..hi].iter().enumerate() {
                let j = lo + off;
                if taken & (1u64 << j) == 0 && cb == ca {
                    taken |= 1u64 << j;
                    s.a_matches.push(ca);
                    break;
                }
            }
        }
        return jaro_finish(a, b, &[taken], &s.a_matches);
    }
    let words = b.len().div_ceil(64);

    // Availability rows over b, direct-indexed by global char id (see
    // `build_peq`): absent `a` chars read an all-zero row, so the scan
    // needs no mapping layer and no cleanup pass. Matching clears bits
    // in place; the table is rebuilt per call anyway.
    build_peq(b, pool, words, &mut s.peq);

    // Single-word specialization (b up to 64 chars): the window is one
    // contiguous bit range of one u64, so the whole candidate set is one
    // load and two mask shifts.
    if words == 1 {
        let mut taken = 0u64;
        s.a_matches.clear();
        for (i, &ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            if lo >= hi {
                continue;
            }
            let mask = s.peq[ca as usize] & (!0u64 << lo) & (!0u64 >> (64 - hi));
            if mask != 0 {
                let bit = mask & mask.wrapping_neg();
                s.peq[ca as usize] ^= bit;
                taken |= bit;
                s.a_matches.push(ca);
            }
        }
        return jaro_finish(a, b, &[taken], &s.a_matches);
    }

    // Two-word specialization (b up to 128 chars — e.g. paper titles):
    // same one-load-two-shifts structure as the single-word path, widened
    // to u128 so the window never straddles a word boundary in code.
    if words == 2 {
        let mut taken = 0u128;
        s.a_matches.clear();
        for (i, &ca) in a.iter().enumerate() {
            let lo = i.saturating_sub(window);
            let hi = (i + window + 1).min(b.len());
            if lo >= hi {
                continue;
            }
            let base = ca as usize * 2;
            let avail = u128::from(s.peq[base]) | (u128::from(s.peq[base + 1]) << 64);
            let mask = avail & (!0u128 << lo) & (!0u128 >> (128 - hi));
            if mask != 0 {
                let bit = mask & mask.wrapping_neg();
                let j = bit.trailing_zeros() as usize;
                s.peq[base + j / 64] ^= 1u64 << (j % 64);
                taken |= bit;
                s.a_matches.push(ca);
            }
        }
        return jaro_finish(a, b, &[taken as u64, (taken >> 64) as u64], &s.a_matches);
    }

    if s.taken.len() < words {
        s.taken.resize(words, 0);
    }
    s.taken[..words].fill(0);
    s.a_matches.clear();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        if lo >= hi {
            continue;
        }
        let base = ca as usize * words;
        let w_lo = lo / 64;
        for w in w_lo..=(hi - 1) / 64 {
            let mut mask = s.peq[base + w];
            if w == w_lo {
                mask &= !0u64 << (lo % 64);
            }
            let covered = hi - w * 64;
            if covered < 64 {
                mask &= (1u64 << covered) - 1;
            }
            if mask != 0 {
                let bit = mask & mask.wrapping_neg();
                s.peq[base + w] ^= bit;
                s.taken[w] |= bit;
                s.a_matches.push(ca);
                break;
            }
        }
    }

    jaro_finish(a, b, &s.taken[..words], &s.a_matches)
}

/// Transposition count and final Jaro expression over the taken-position
/// bitmask; the bit walk visits b's matched positions in order — the same
/// zip the reference materializes `b_matches` for.
#[inline]
fn jaro_finish(a: &[u32], b: &[u32], taken: &[u64], a_matches: &[u32]) -> f64 {
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    let mut transpositions = 0usize;
    let mut k = 0usize;
    for (w, &tw) in taken.iter().enumerate() {
        let mut t = tw;
        while t != 0 {
            let j = w * 64 + t.trailing_zeros() as usize;
            if a_matches[k] != b[j] {
                transpositions += 1;
            }
            k += 1;
            t &= t - 1;
        }
    }
    let m = m as f64;
    let t = (transpositions / 2) as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler over char-id slices; prefix boost replicates
/// `jaro::jaro_winkler` exactly.
#[inline]
fn jaro_winkler_ids(a: &[u32], b: &[u32], pool: usize, s: &mut CharScratch) -> f64 {
    let j = jaro_ids(a, b, pool, s);
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Jaro over precomputed raw char ids; mirrors `jaro::jaro`.
#[inline]
pub fn jaro_pre(a: AttrView<'_>, b: AttrView<'_>, pool: usize, gen: u64) -> f64 {
    with_scratch(|s| jaro_pre_s(a, b, pool, gen, s))
}

/// [`jaro_pre`] over a caller-held scratch.
pub(crate) fn jaro_pre_s(
    a: AttrView<'_>,
    b: AttrView<'_>,
    pool: usize,
    gen: u64,
    s: &mut CharScratch,
) -> f64 {
    cached(s, gen, TAG_JARO, a.value_id(), b.value_id(), |s| {
        jaro_ids(a.raw_char_ids(), b.raw_char_ids(), pool, s)
    })
}

/// Jaro-Winkler over precomputed raw char ids; mirrors
/// `jaro::jaro_winkler`.
#[inline]
pub fn jaro_winkler_pre(a: AttrView<'_>, b: AttrView<'_>, pool: usize, gen: u64) -> f64 {
    with_scratch(|s| jaro_winkler_pre_s(a, b, pool, gen, s))
}

/// [`jaro_winkler_pre`] over a caller-held scratch.
pub(crate) fn jaro_winkler_pre_s(
    a: AttrView<'_>,
    b: AttrView<'_>,
    pool: usize,
    gen: u64,
    s: &mut CharScratch,
) -> f64 {
    cached(s, gen, TAG_JW, a.value_id(), b.value_id(), |s| {
        // Route the O(n²) matching through the Jaro cache slot: a
        // pair vectorized with both kinds (the common case) does the
        // match work once, and the boost is O(1) on top.
        let j = jaro_pre_s(a, b, pool, gen, s);
        let prefix = a
            .raw_char_ids()
            .iter()
            .zip(b.raw_char_ids())
            .take(4)
            .take_while(|(x, y)| x == y)
            .count();
        j + prefix as f64 * 0.1 * (1.0 - j)
    })
}

// ---- Monge-Elkan ---------------------------------------------------------

/// Directed Monge-Elkan over precomputed token material; equals
/// `monge_elkan::monge_elkan`'s iterator chain bit-for-bit.
///
/// Three reductions cut the inner-comparison count without touching the
/// result's bits, because the reference's per-token fold
/// (`fold(0.0, f64::max)` over finite, non-negative scores) computes the
/// plain maximum of its value set:
///
/// * duplicate `b` tokens are skipped — a max is idempotent (the distinct
///   set is precomputed per value as `word_dedup_ids`/`word_dedup_first`);
/// * repeated `a` tokens reuse the memoized best (indexed by the
///   precomputed `word_dedup_rank`) — recomputing the same deterministic
///   fold would return the identical bits, and the sum still adds its
///   terms in occurrence order;
/// * an `a` token that also occurs in `b` scores an exact 1.0
///   (`jaro_winkler(x, x)`'s bits), which no other score can exceed.
fn monge_elkan_dir(
    a: AttrView<'_>,
    b: AttrView<'_>,
    pool: usize,
    gen: u64,
    s: &mut CharScratch,
) -> f64 {
    let (na, nb) = (a.n_word_tokens(), b.n_word_tokens());
    if na == 0 && nb == 0 {
        return 1.0;
    }
    if na == 0 || nb == 0 {
        return 0.0;
    }
    // Per-distinct-`a`-token memo; NaN marks "not yet computed" (a real
    // best is always finite: the fold starts at 0.0 over finite scores).
    s.me_a_best.clear();
    s.me_a_best.resize(a.word_dedup_ids().len(), f64::NAN);
    let mut sum = 0.0f64;
    for i in 0..na {
        let r = a.word_dedup_rank()[i] as usize;
        let mut best = s.me_a_best[r];
        if best.is_nan() {
            let id = a.word_token_ids()[i];
            best = 0.0;
            if b.word_dedup_ids().contains(&id) {
                best = 1.0;
            } else {
                let ta = a.word_token(i);
                for (p, &idb) in b.word_dedup_ids().iter().enumerate() {
                    let j = b.word_dedup_first()[p] as usize;
                    let tb = b.word_token(j);
                    // Tiny token pairs (numeric fragments, initials)
                    // compute faster than a probe-plus-fill on the low
                    // hit rates their near-unique values see; longer
                    // vocabulary words recur across records and keep
                    // the memo.
                    let v = if ta.len() + tb.len() <= 8 {
                        jaro_winkler_ids(ta, tb, pool, s)
                    } else {
                        cached(s, gen, TAG_ME_TOKEN, id, idb, |s| {
                            jaro_winkler_ids(ta, tb, pool, s)
                        })
                    };
                    best = best.max(v);
                }
            }
            s.me_a_best[r] = best;
        }
        sum += best;
    }
    sum / na as f64
}

/// Symmetric Monge-Elkan over precomputed token material; mirrors
/// `monge_elkan::monge_elkan_sym` (forward direction first).
#[inline]
pub fn monge_elkan_pre(a: AttrView<'_>, b: AttrView<'_>, pool: usize, gen: u64) -> f64 {
    with_scratch(|s| monge_elkan_pre_s(a, b, pool, gen, s))
}

/// [`monge_elkan_pre`] over a caller-held scratch.
pub(crate) fn monge_elkan_pre_s(
    a: AttrView<'_>,
    b: AttrView<'_>,
    pool: usize,
    gen: u64,
    s: &mut CharScratch,
) -> f64 {
    cached(s, gen, TAG_ME, a.value_id(), b.value_id(), |s| {
        (monge_elkan_dir(a, b, pool, gen, s) + monge_elkan_dir(b, a, pool, gen, s)) / 2.0
    })
}

// ---- Smith-Waterman ------------------------------------------------------

/// Length cap for the 16-bit Smith-Waterman path. The DP values are
/// bounded by `2·min(|a|,|b|)` and the row form's scanned offset
/// `partial + j` by `2·min(|a|,|b|) + |b| − 1 ≤ 3·len − 1`, so with both
/// lengths capped at 8192 every intermediate stays well inside `i16`
/// and the 16-bit arithmetic is integer-identical to the 32-bit form.
const SW_I16_MAX_LEN: usize = 8192;

/// Generates one cell-width instantiation of the two Smith-Waterman
/// forms. The bodies are textually shared so the 16-bit variants cannot
/// drift from the 32-bit ones: only the char type, cell type, and the
/// scratch buffers differ. The recurrence replicates `align`'s exactly —
/// every intermediate fits the cell type (`i32` unconditionally; `i16`
/// under the [`SW_I16_MAX_LEN`] gate enforced by the dispatcher), so the
/// integer arithmetic is identical at either width.
macro_rules! sw_forms {
    ($score:ident, $diag:ident, $ch:ty, $cell:ty,
     $prev:ident, $cur:ident, $diagbuf:ident, $brev:ident) => {
        /// Smith-Waterman local-alignment score over char-id slices
        /// with reusable DP rows.
        fn $score(a: &[$ch], b: &[$ch], s: &mut CharScratch) -> i64 {
            if a.is_empty() || b.is_empty() {
                return 0;
            }
            if a == b {
                // The identity alignment scores the 2·|a| upper bound,
                // so it is the DP's exact best.
                return 2 * a.len() as i64;
            }
            // Longer inputs amortize the anti-diagonal form's
            // per-diagonal setup; the crossover sits near 40 chars in
            // microbenchmarks.
            if a.len().min(b.len()) >= 40 {
                return $diag(a, b, s);
            }
            s.$prev.clear();
            s.$prev.resize(b.len() + 1, 0);
            s.$cur.clear();
            s.$cur.resize(b.len() + 1, 0);
            let mut best: $cell = 0;
            for &ca in a {
                // The reference recurrence is
                //   v[j] = max(diag + s, up − 1, v[j−1] − 1, 0).
                // Let partial[j] = max(diag + s, up − 1, 0)
                // (previous-row terms only). Unrolling the v[j−1]
                // dependency gives
                //   v[j] = max over k ≤ j of (partial[k] − (j − k))
                //        = prefixmax(partial[k] + k) − j,
                // so the row splits into an elementwise pass with no
                // loop-carried state (vectorizable) and a prefix-max
                // scan whose carried chain is a single integer max.
                // Integer max is associative and commutative, so every
                // cell equals the reference's exactly.
                let n = b.len();
                let prev = &s.$prev[..n + 1];
                let cur = &mut s.$cur[1..n + 1];
                // Elementwise pass: no loop-carried state, bounds
                // pre-established — the form LLVM's auto-vectorizer
                // handles (compare + blend for the score, packed max
                // for the clamps, iota for `+ j`).
                for j in 0..n {
                    let partial = (prev[j] + if b[j] == ca { 2 } else { -1 })
                        .max(prev[j + 1] - 1)
                        .max(0);
                    cur[j] = partial + j as $cell;
                }
                // Serial scan. `best` tracks the row max of partial
                // (= *c − j), not of the scanned value: each scanned
                // max(partial[k] − (j − k), k ≤ j) is bounded by some
                // partial and reaches it at j = k, so the two row
                // maxima are the same integer. Keeping the reduction
                // out of the first loop leaves it free of carried
                // dependencies.
                let mut m = <$cell>::MIN;
                for (j, c) in cur.iter_mut().enumerate() {
                    m = m.max(*c);
                    best = best.max(*c - j as $cell);
                    *c = m - j as $cell;
                }
                std::mem::swap(&mut s.$prev, &mut s.$cur);
            }
            i64::from(best)
        }

        /// Anti-diagonal Smith-Waterman for longer inputs. Every cell
        /// on the anti-diagonal `d = i + j` depends only on diagonals
        /// `d−1` and `d−2`, so a whole diagonal computes elementwise
        /// with no carried state — not even the row form's prefix-max
        /// scan. `b` is reversed once up front so both sequences
        /// advance forward along a diagonal. Cell for cell this
        /// evaluates the identical integer recurrence, so the score is
        /// exactly the row form's (and the reference's).
        fn $diag(a: &[$ch], b: &[$ch], s: &mut CharScratch) -> i64 {
            let m = a.len();
            let n = b.len();
            s.$brev.clear();
            s.$brev.extend(b.iter().rev());
            for v in [&mut s.$prev, &mut s.$cur, &mut s.$diagbuf] {
                v.clear();
                v.resize(m + 2, 0);
            }
            let mut best: $cell = 0;
            // Rolling diagonals, indexed at `i + 1` so reads at `i − 1`
            // land on a real slot. A slot is only ever read as a cell
            // of diagonal `d−1` or `d−2` if that diagonal's valid range
            // actually wrote it (the ranges shift by at most one per
            // step); otherwise it still holds a zero from
            // initialization — exactly the out-of-matrix boundary
            // value.
            let mut p2 = std::mem::take(&mut s.$diagbuf);
            let mut p1 = std::mem::take(&mut s.$prev);
            let mut cur = std::mem::take(&mut s.$cur);
            for d in 0..(m + n - 1) {
                // Cells (i, d − i) with lo ≤ i ≤ hi are inside the
                // matrix.
                let lo = d.saturating_sub(n - 1);
                let hi = d.min(m - 1);
                let aw = &a[lo..hi + 1];
                // b[d − i] = brev[n − 1 − d + i]: forward in i.
                let bw = &s.$brev[(lo + n - 1 - d)..(hi + n - d)];
                let len = hi - lo + 1;
                let p2w = &p2[lo..hi + 1];
                let p1dw = &p1[lo..hi + 1];
                let p1uw = &p1[lo + 1..hi + 2];
                let curw = &mut cur[lo + 1..hi + 2];
                // Index-based over equal-length windows (bounds
                // established by the slicing above) — the flat shape
                // the auto-vectorizer handles more reliably than a
                // five-way nested zip.
                for k in 0..len {
                    let sc = if aw[k] == bw[k] { 2 } else { -1 };
                    curw[k] = (p2w[k] + sc).max(p1dw[k].max(p1uw[k]) - 1).max(0);
                }
                let mut dm: $cell = 0;
                for &v in curw.iter() {
                    dm = dm.max(v);
                }
                best = best.max(dm);
                let t = p2;
                p2 = p1;
                p1 = cur;
                cur = t;
            }
            s.$diagbuf = p2;
            s.$prev = p1;
            s.$cur = cur;
            i64::from(best)
        }
    };
}

sw_forms!(
    smith_waterman_score_ids,
    smith_waterman_score_diag,
    u32,
    i32,
    sw_prev,
    sw_cur,
    sw_diag,
    sw_brev
);
sw_forms!(
    smith_waterman_score_ids16,
    smith_waterman_score_diag16,
    i16,
    i16,
    sw_prev16,
    sw_cur16,
    sw_diag16,
    sw_brev16
);

/// Normalized Smith-Waterman over the precomputed lowercased char ids;
/// mirrors `align::smith_waterman_similarity` (which scores and
/// normalizes over the lower-cased sequences).
#[inline]
pub fn smith_waterman_pre(a: AttrView<'_>, b: AttrView<'_>, gen: u64) -> f64 {
    with_scratch(|s| smith_waterman_pre_s(a, b, gen, s))
}

/// [`smith_waterman_pre`] over a caller-held scratch.
pub(crate) fn smith_waterman_pre_s(
    a: AttrView<'_>,
    b: AttrView<'_>,
    gen: u64,
    s: &mut CharScratch,
) -> f64 {
    cached(s, gen, TAG_SW, a.value_id(), b.value_id(), |s| {
        let (ca, cb) = (a.lower_char_ids(), b.lower_char_ids());
        if ca.is_empty() && cb.is_empty() {
            return 1.0;
        }
        if ca.is_empty() || cb.is_empty() {
            return 0.0;
        }
        let max_score = 2 * ca.len().min(cb.len()) as i64;
        // 16-bit path when both sides carry narrowed ids (empty means
        // the char pool overflowed i16 — `ca`/`cb` are non-empty here)
        // and the lengths keep every DP intermediate inside i16.
        let (ca16, cb16) = (a.lower_char_i16(), b.lower_char_i16());
        let score = if ca16.len() == ca.len()
            && cb16.len() == cb.len()
            && ca.len().max(cb.len()) <= SW_I16_MAX_LEN
        {
            smith_waterman_score_ids16(ca16, cb16, s)
        } else {
            smith_waterman_score_ids(ca, cb, s)
        };
        (score as f64 / max_score as f64).clamp(0.0, 1.0)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edit;

    /// Intern two strings against a tiny shared pool, mirroring what the
    /// analysis layer does for `raw_char_ids`.
    fn intern(a: &str, b: &str) -> (Vec<u32>, Vec<u32>, usize) {
        let mut pool: Vec<char> = a.chars().chain(b.chars()).collect();
        pool.sort_unstable();
        pool.dedup();
        let ids = |s: &str| -> Vec<u32> {
            s.chars()
                .map(|c| pool.binary_search(&c).expect("char interned") as u32)
                .collect()
        };
        (ids(a), ids(b), pool.len())
    }

    fn myers(a: &str, b: &str) -> usize {
        let (ia, ib, pool) = intern(a, b);
        let mut s = CharScratch::default();
        myers_distance(&ia, &ib, pool, &mut s)
    }

    #[test]
    fn myers_matches_dp_on_classics() {
        for (a, b) in [
            ("kitten", "sitting"),
            ("", "abc"),
            ("abc", ""),
            ("", ""),
            ("flaw", "lawn"),
            ("café", "cafe"),
            ("abc", "abc"),
            ("a", "b"),
            ("ab", "ba"),
        ] {
            assert_eq!(myers(a, b), edit::levenshtein(a, b), "({a:?}, {b:?})");
        }
    }

    #[test]
    fn myers_matches_dp_across_word_boundaries() {
        // Deterministic pseudo-random strings over a small alphabet with
        // lengths straddling 64 and 128 (1, 2, and 3 Myers words).
        let gen = |seed: u64, len: usize| -> String {
            let mut x = seed | 1;
            (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    char::from(b'a' + ((x >> 33) % 5) as u8)
                })
                .collect()
        };
        for la in [1usize, 7, 63, 64, 65, 100, 127, 128, 129, 200] {
            for lb in [1usize, 63, 64, 65, 130] {
                let a = gen(la as u64 * 31 + 7, la);
                let b = gen(lb as u64 * 17 + 3, lb);
                assert_eq!(
                    myers(&a, &b),
                    edit::levenshtein(&a, &b),
                    "lengths ({la}, {lb})"
                );
            }
        }
    }

    #[test]
    fn myers_affix_trimming_is_sound() {
        // Shared prefix + suffix around a differing core, crossing the
        // word boundary so the trim changes the block count.
        let pre = "x".repeat(60);
        let suf = "y".repeat(60);
        let a = format!("{pre}hello{suf}");
        let b = format!("{pre}hallo{suf}");
        assert_eq!(myers(&a, &b), 1);
        assert_eq!(myers(&a, &a), 0);
        let c = format!("{pre}{suf}");
        assert_eq!(myers(&a, &c), 5);
    }

    #[test]
    fn scratch_reuse_does_not_leak_state() {
        // Back-to-back calls with very different alphabets and sizes on
        // ONE scratch must each match the reference — stale map/peq/pv
        // state would corrupt the later calls.
        let cases = [
            ("kingston hyperx 4gb kit of two modules and a heat spreader, extended edition", "kingston hyper-x 4 gb kit"),
            ("ab", "ba"),
            ("zzzzzz", "zzzzzz"),
            ("a", ""),
        ];
        let mut s = CharScratch::default();
        for (a, b) in cases {
            let (ia, ib, pool) = intern(a, b);
            assert_eq!(
                myers_distance(&ia, &ib, pool, &mut s),
                edit::levenshtein(a, b),
                "({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn jaro_ids_matches_reference() {
        use crate::jaro;
        let mut s = CharScratch::default();
        for (a, b) in [
            ("MARTHA", "MARHTA"),
            ("DIXON", "DICKSONX"),
            ("", ""),
            ("", "a"),
            ("abc", "xyz"),
            ("CRATE", "TRACE"),
            ("prefix", "prefixxxxx"),
            ("aaaa", "aaaa"),
            ("aabab", "ababa"),
        ] {
            let (ia, ib, pool) = intern(a, b);
            assert_eq!(jaro_ids(&ia, &ib, pool, &mut s).to_bits(), jaro::jaro(a, b).to_bits());
            assert_eq!(
                jaro_winkler_ids(&ia, &ib, pool, &mut s).to_bits(),
                jaro::jaro_winkler(a, b).to_bits()
            );
        }
    }

    #[test]
    fn jaro_ids_matches_reference_past_word_boundary() {
        // Texts over 64 chars exercise the multi-word availability masks
        // (windows spanning word boundaries, matches in the second word).
        use crate::jaro;
        let gen = |seed: u64, len: usize| -> String {
            let mut x = seed | 1;
            (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    char::from(b'a' + ((x >> 33) % 4) as u8)
                })
                .collect()
        };
        let mut s = CharScratch::default();
        for la in [40usize, 63, 64, 65, 100, 130] {
            for lb in [1usize, 64, 65, 129] {
                let a = gen(la as u64 * 13 + 1, la);
                let b = gen(lb as u64 * 29 + 5, lb);
                let (ia, ib, pool) = intern(&a, &b);
                assert_eq!(
                    jaro_ids(&ia, &ib, pool, &mut s).to_bits(),
                    jaro::jaro(&a, &b).to_bits(),
                    "lengths ({la}, {lb})"
                );
            }
        }
    }

    #[test]
    fn smith_waterman_ids_matches_reference_scores() {
        use crate::align;
        let mut s = CharScratch::default();
        for (a, b) in [
            ("kingston", "kingston"),
            ("aaaa", "bbbb"),
            ("khx1600c9d3k3", "kingston hyperx khx1600c9d3k3 12gb kit"),
            ("kingston", "king-ston"),
        ] {
            let (ia, ib, _) = intern(a, b);
            // Inputs are pre-lowercased here, so the reference's own
            // lowercasing is the identity and scores must agree.
            assert_eq!(
                smith_waterman_score_ids(&ia, &ib, &mut s),
                align::smith_waterman_score(a, b),
                "({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn smith_waterman_row_and_diag_forms_match_reference() {
        use crate::align;
        // Length sweep straddling the 40-char row/diagonal crossover,
        // including strongly asymmetric pairs, on deterministic
        // pseudo-random strings over a small alphabet (frequent matches).
        let gen = |seed: u64, len: usize| -> String {
            let mut x = seed | 1;
            (0..len)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    char::from(b'a' + ((x >> 33) % 6) as u8)
                })
                .collect()
        };
        let mut s = CharScratch::default();
        for la in [1usize, 8, 25, 39, 40, 41, 70, 110] {
            for lb in [1usize, 12, 40, 64, 90, 150] {
                let a = gen(la as u64 * 131 + 3, la);
                let b = gen(lb as u64 * 17 + 11, lb);
                let (ia, ib, _) = intern(&a, &b);
                let want = align::smith_waterman_score(&a, &b);
                assert_eq!(
                    smith_waterman_score_ids(&ia, &ib, &mut s),
                    want,
                    "dispatch ({la}, {lb})"
                );
                // Both forms must agree with the reference regardless of
                // the dispatch length gate.
                if !ia.is_empty() && !ib.is_empty() {
                    assert_eq!(
                        smith_waterman_score_diag(&ia, &ib, &mut s),
                        want,
                        "diag ({la}, {lb})"
                    );
                }
                // The 16-bit instantiations must agree cell-for-cell:
                // same grid through the narrowed ids.
                let ia16: Vec<i16> = ia.iter().map(|&c| c as i16).collect();
                let ib16: Vec<i16> = ib.iter().map(|&c| c as i16).collect();
                assert_eq!(
                    smith_waterman_score_ids16(&ia16, &ib16, &mut s),
                    want,
                    "dispatch16 ({la}, {lb})"
                );
                if !ia16.is_empty() && !ib16.is_empty() {
                    assert_eq!(
                        smith_waterman_score_diag16(&ia16, &ib16, &mut s),
                        want,
                        "diag16 ({la}, {lb})"
                    );
                }
            }
        }
    }
}
