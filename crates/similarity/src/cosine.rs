//! TF/IDF-weighted cosine similarity.
//!
//! Unlike the other measures, TF/IDF needs corpus statistics: rare tokens
//! (a model number, a distinctive surname) should weigh more than common
//! ones ("the", "inc"). [`TfIdfModel`] is fitted once per attribute over all
//! values of that attribute in both input tables, then reused for every
//! pair — exactly how an EM feature library amortizes the corpus pass.

use crate::tokenize::words;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Corpus statistics for TF/IDF weighting of one attribute.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TfIdfModel {
    /// Number of documents the model was fitted on.
    n_docs: usize,
    /// Document frequency per token.
    df: HashMap<String, u32>,
}

impl TfIdfModel {
    /// Fit a model over an iterator of documents (attribute values).
    pub fn fit<'a, I: IntoIterator<Item = &'a str>>(docs: I) -> Self {
        let mut df: HashMap<String, u32> = HashMap::new();
        let mut n_docs = 0usize;
        for doc in docs {
            n_docs += 1;
            let mut toks = words(doc);
            toks.sort_unstable();
            toks.dedup();
            for t in toks {
                *df.entry(t).or_insert(0) += 1;
            }
        }
        TfIdfModel { n_docs, df }
    }

    /// Smoothed inverse document frequency of a token:
    /// `ln(1 + N / (1 + df))`. Unknown tokens get the maximum IDF.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.df.get(token).copied().unwrap_or(0) as f64;
        (1.0 + self.n_docs as f64 / (1.0 + df)).ln()
    }

    /// Number of documents the model was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Sparse TF/IDF vector of a string, sorted by token. Sorted order
    /// (not hash-map order) matters: float sums below must accumulate in
    /// a fixed order or the low bits of the similarity vary per process.
    /// Crate-visible so [`crate::analysis`] can precompute the exact same
    /// vectors once per record.
    pub(crate) fn weights(&self, s: &str) -> Vec<(String, f64)> {
        let mut toks = words(s);
        toks.sort_unstable();
        let mut tf: Vec<(String, f64)> = Vec::new();
        for t in toks {
            match tf.last_mut() {
                Some(last) if last.0 == t => last.1 += 1.0,
                _ => tf.push((t, 1.0)),
            }
        }
        for (t, w) in tf.iter_mut() {
            *w *= self.idf(t);
        }
        tf
    }

    /// TF/IDF cosine similarity between two strings in `[0, 1]`.
    /// Returns 1 for two empty strings and 0 when exactly one is empty.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let wa = self.weights(a);
        let wb = self.weights(b);
        if wa.is_empty() && wb.is_empty() {
            return 1.0;
        }
        if wa.is_empty() || wb.is_empty() {
            return 0.0;
        }
        // Merge-join over the token-sorted vectors.
        let mut dot = 0.0f64;
        let (mut i, mut j) = (0, 0);
        while i < wa.len() && j < wb.len() {
            match wa[i].0.cmp(&wb[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    dot += wa[i].1 * wb[j].1;
                    i += 1;
                    j += 1;
                }
            }
        }
        let na: f64 = wa.iter().map(|(_, x)| x * x).sum::<f64>().sqrt();
        let nb: f64 = wb.iter().map(|(_, x)| x * x).sum::<f64>().sqrt();
        (dot / (na * nb)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TfIdfModel {
        TfIdfModel::fit([
            "kingston hyperx memory kit",
            "kingston valueram memory",
            "corsair vengeance memory kit",
            "samsung evo ssd",
        ])
    }

    #[test]
    fn identical_strings_are_one() {
        let m = model();
        assert!((m.cosine("kingston hyperx", "kingston hyperx") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_strings_are_zero() {
        let m = model();
        assert_eq!(m.cosine("samsung evo", "corsair vengeance"), 0.0);
    }

    #[test]
    fn rare_tokens_dominate() {
        let m = model();
        // Sharing the rare "hyperx" outweighs sharing the common "memory".
        let rare = m.cosine("kingston hyperx", "hyperx kit");
        let common = m.cosine("kingston memory", "memory corsair");
        assert!(rare > common, "{rare} vs {common}");
    }

    #[test]
    fn empty_handling() {
        let m = model();
        assert_eq!(m.cosine("", ""), 1.0);
        assert_eq!(m.cosine("", "kingston"), 0.0);
    }

    #[test]
    fn unknown_tokens_get_max_idf() {
        let m = model();
        assert!(m.idf("zzz-unknown") >= m.idf("memory"));
    }

    #[test]
    fn fit_counts_docs() {
        assert_eq!(model().n_docs(), 4);
    }
}
