//! Minimal CSV support for loading EM tables — a downstream user's data
//! arrives as CSV files, not Rust literals.
//!
//! Implements the RFC 4180 essentials without external dependencies:
//! quoted fields, embedded commas/newlines/escaped quotes, and CRLF line
//! endings. Column types are inferred: a column where every non-empty
//! value parses as a number becomes [`AttrType::Number`], everything else
//! is text. Empty fields load as [`Value::Null`].

use crate::record::{AttrType, Attribute, Schema, Table, Value};
use std::fmt;
use std::sync::Arc;

/// CSV parsing error with 1-based line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based record number (header = 1).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CSV error at record {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Split CSV text into records of fields (RFC 4180 quoting).
pub fn parse_csv(text: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;

    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
            continue;
        }
        match c {
            '"' => {
                if !field.is_empty() {
                    return Err(CsvError {
                        line,
                        message: "quote in the middle of an unquoted field".into(),
                    });
                }
                in_quotes = true;
            }
            ',' => {
                record.push(std::mem::take(&mut field));
            }
            '\r' => {
                // Swallow; the following \n (if any) ends the record.
            }
            '\n' => {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
                line += 1;
            }
            _ => field.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError { line, message: "unterminated quoted field".into() });
    }
    if !field.is_empty() || !record.is_empty() {
        record.push(field);
        records.push(record);
    }
    // Drop fully empty trailing records (file ending in newline).
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    Ok(records)
}

/// Load a [`Table`] from CSV text. The first record is the header; column
/// types are inferred (all-numeric → `Number`). Returns the table and its
/// schema (shared via `Arc` so a second file can reuse it).
pub fn table_from_csv(name: &str, text: &str) -> Result<Table, CsvError> {
    let records = parse_csv(text)?;
    let Some((header, rows)) = records.split_first() else {
        return Err(CsvError { line: 1, message: "empty file".into() });
    };
    let n_cols = header.len();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != n_cols {
            return Err(CsvError {
                line: i + 2,
                message: format!("expected {n_cols} fields, found {}", r.len()),
            });
        }
    }
    // Infer per-column types.
    let mut numeric = vec![true; n_cols];
    for r in rows {
        for (c, v) in r.iter().enumerate() {
            if !v.trim().is_empty() && v.trim().parse::<f64>().is_err() {
                numeric[c] = false;
            }
        }
    }
    let attrs: Vec<Attribute> = header
        .iter()
        .zip(&numeric)
        .map(|(name, &is_num)| Attribute {
            name: name.trim().to_string(),
            ty: if is_num { AttrType::Number } else { AttrType::Text },
        })
        .collect();
    let schema = Arc::new(Schema::new(attrs));
    let typed_rows: Vec<Vec<Value>> = rows
        .iter()
        .map(|r| {
            r.iter()
                .enumerate()
                .map(|(c, v)| {
                    let t = v.trim();
                    if t.is_empty() {
                        Value::Null
                    } else if numeric[c] {
                        Value::Number(t.parse().expect("checked during inference"))
                    } else {
                        Value::Text(v.clone())
                    }
                })
                .collect()
        })
        .collect();
    Ok(Table::new(name, schema, typed_rows))
}

/// Load a table from CSV text, forcing it onto an existing schema (names
/// must match the header; types are taken from the schema). Use for the
/// second table of an EM task so both share one schema instance.
pub fn table_from_csv_with_schema(
    name: &str,
    text: &str,
    schema: Arc<Schema>,
) -> Result<Table, CsvError> {
    let records = parse_csv(text)?;
    let Some((header, rows)) = records.split_first() else {
        return Err(CsvError { line: 1, message: "empty file".into() });
    };
    if header.len() != schema.len()
        || header
            .iter()
            .zip(&schema.attrs)
            .any(|(h, a)| h.trim() != a.name)
    {
        return Err(CsvError {
            line: 1,
            message: format!(
                "header {:?} does not match schema {:?}",
                header,
                schema.attrs.iter().map(|a| &a.name).collect::<Vec<_>>()
            ),
        });
    }
    let typed_rows: Result<Vec<Vec<Value>>, CsvError> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            if r.len() != schema.len() {
                return Err(CsvError {
                    line: i + 2,
                    message: format!("expected {} fields, found {}", schema.len(), r.len()),
                });
            }
            r.iter()
                .zip(&schema.attrs)
                .map(|(v, attr)| {
                    let t = v.trim();
                    if t.is_empty() {
                        return Ok(Value::Null);
                    }
                    match attr.ty {
                        AttrType::Number => t.parse::<f64>().map(Value::Number).map_err(|_| {
                            CsvError {
                                line: i + 2,
                                message: format!(
                                    "column '{}' is numeric but value '{t}' is not",
                                    attr.name
                                ),
                            }
                        }),
                        AttrType::Text => Ok(Value::Text(v.clone())),
                    }
                })
                .collect()
        })
        .collect();
    Ok(Table::new(name, schema, typed_rows?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_csv() {
        let rs = parse_csv("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(rs, vec![vec!["a", "b"], vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn parses_quoted_fields() {
        let rs = parse_csv("name,notes\n\"Smith, John\",\"said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(rs[1], vec!["Smith, John", "said \"hi\""]);
    }

    #[test]
    fn parses_embedded_newline() {
        let rs = parse_csv("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(rs[1][0], "line1\nline2");
    }

    #[test]
    fn crlf_handled() {
        let rs = parse_csv("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[1], vec!["1", "2"]);
    }

    #[test]
    fn rejects_unterminated_quote() {
        assert!(parse_csv("a\n\"oops\n").is_err());
    }

    #[test]
    fn rejects_stray_quote() {
        let err = parse_csv("a\nfo\"o\n").unwrap_err();
        assert!(err.message.contains("unquoted"));
    }

    #[test]
    fn table_infers_types() {
        let t = table_from_csv("products", "name,price\nWidget,9.99\nGadget,\n").unwrap();
        assert_eq!(t.schema.attrs[0].ty, AttrType::Text);
        assert_eq!(t.schema.attrs[1].ty, AttrType::Number);
        assert_eq!(t.record(0).value(1), &Value::Number(9.99));
        assert_eq!(t.record(1).value(1), &Value::Null);
    }

    #[test]
    fn mixed_column_falls_back_to_text() {
        let t = table_from_csv("x", "code\n123\nA55\n").unwrap();
        assert_eq!(t.schema.attrs[0].ty, AttrType::Text);
        assert_eq!(t.record(0).value(0), &Value::Text("123".into()));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = table_from_csv("x", "a,b\n1\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn shared_schema_roundtrip() {
        let a = table_from_csv("a", "name,price\nWidget,1\n").unwrap();
        let b = table_from_csv_with_schema("b", "name,price\nWidget Pro,2\n", a.schema.clone())
            .unwrap();
        assert_eq!(a.schema, b.schema);
        assert_eq!(b.record(0).value(1), &Value::Number(2.0));
    }

    #[test]
    fn shared_schema_rejects_header_mismatch() {
        let a = table_from_csv("a", "name,price\nW,1\n").unwrap();
        assert!(table_from_csv_with_schema("b", "title,price\nX,2\n", a.schema.clone()).is_err());
    }

    #[test]
    fn shared_schema_rejects_bad_number() {
        let a = table_from_csv("a", "name,price\nW,1\n").unwrap();
        let err =
            table_from_csv_with_schema("b", "name,price\nX,cheap\n", a.schema).unwrap_err();
        assert!(err.message.contains("numeric"));
    }

    #[test]
    fn empty_file_rejected() {
        assert!(table_from_csv("x", "").is_err());
    }
}
