//! Set-overlap similarities over word tokens and q-grams: Jaccard, Dice,
//! and the overlap coefficient.

use crate::tokenize::{qgrams, words};
use std::collections::HashSet;

fn set_stats(a: &[String], b: &[String]) -> (usize, usize, usize) {
    let sa: HashSet<&str> = a.iter().map(|s| s.as_str()).collect();
    let sb: HashSet<&str> = b.iter().map(|s| s.as_str()).collect();
    let inter = sa.intersection(&sb).count();
    (inter, sa.len(), sb.len())
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` over two token sets.
/// Two empty sets are similarity 1.
pub fn jaccard_sets(a: &[String], b: &[String]) -> f64 {
    let (inter, la, lb) = set_stats(a, b);
    let union = la + lb - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Dice coefficient `2|A ∩ B| / (|A| + |B|)` over two token sets.
pub fn dice_sets(a: &[String], b: &[String]) -> f64 {
    let (inter, la, lb) = set_stats(a, b);
    if la + lb == 0 {
        return 1.0;
    }
    2.0 * inter as f64 / (la + lb) as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` over two token sets.
/// Useful when one string is a sub-description of the other (e.g. a short
/// product title vs. a long one).
pub fn overlap_sets(a: &[String], b: &[String]) -> f64 {
    let (inter, la, lb) = set_stats(a, b);
    let min = la.min(lb);
    if min == 0 {
        return if la == lb { 1.0 } else { 0.0 };
    }
    inter as f64 / min as f64
}

/// Jaccard over whitespace word tokens of the two strings.
pub fn jaccard_words(a: &str, b: &str) -> f64 {
    jaccard_sets(&words(a), &words(b))
}

/// Jaccard over padded character 3-grams of the two strings.
pub fn jaccard_qgrams(a: &str, b: &str, q: usize) -> f64 {
    jaccard_sets(&qgrams(a, q), &qgrams(b, q))
}

/// Overlap coefficient over word tokens.
pub fn overlap_words(a: &str, b: &str) -> f64 {
    overlap_sets(&words(a), &words(b))
}

/// Dice coefficient over word tokens.
pub fn dice_words(a: &str, b: &str) -> f64 {
    dice_sets(&words(a), &words(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_words_basic() {
        assert_eq!(jaccard_words("a b c", "a b d"), 0.5);
        assert_eq!(jaccard_words("a b", "a b"), 1.0);
        assert_eq!(jaccard_words("a", "b"), 0.0);
    }

    #[test]
    fn jaccard_empty_is_one() {
        assert_eq!(jaccard_words("", ""), 1.0);
        assert_eq!(jaccard_words("", "a"), 0.0);
    }

    #[test]
    fn overlap_subset_is_one() {
        assert_eq!(overlap_words("kingston hyperx", "kingston hyperx 4gb kit"), 1.0);
    }

    #[test]
    fn overlap_one_empty() {
        assert_eq!(overlap_words("", "a"), 0.0);
        assert_eq!(overlap_words("", ""), 1.0);
    }

    #[test]
    fn dice_between_jaccard_and_overlap() {
        let (a, b) = ("alpha beta gamma", "alpha beta delta");
        let j = jaccard_words(a, b);
        let d = dice_words(a, b);
        let o = overlap_words(a, b);
        assert!(j <= d && d <= o, "{j} {d} {o}");
    }

    #[test]
    fn qgram_jaccard_tolerates_typos() {
        let s = jaccard_qgrams("kingston", "kingstom", 3);
        assert!(s > 0.5 && s < 1.0);
    }

    #[test]
    fn duplicates_collapse_to_sets() {
        assert_eq!(jaccard_words("a a a b", "a b"), 1.0);
    }
}
