//! Precomputed per-record analysis for the blocking hot path.
//!
//! Applying blocking rules to `A × B` (paper §4.3) evaluates set- and
//! vector-based similarity features on up to hundreds of millions of
//! pairs. The string-based kernels re-normalize, re-tokenize, and rebuild
//! hash sets from raw strings *per pair, per feature* — O(|A|·|B|) repeats
//! of work that only depends on one record at a time.
//!
//! This module hoists all of that per-record work into a [`TaskAnalysis`]
//! built once per task (in parallel through [`exec`]): for every record
//! and text attribute it precomputes the whitespace-collapsed normalized
//! string, the trimmed char sequence, interned word-token and 3-gram ids
//! as sorted `u32` runs, packed Soundex code sets, the sparse TF/IDF
//! weight vector with its precomputed L2 norm, and the interned char-id
//! sequences (raw, lowercased, and per-word-token) that the char-level
//! kernels in [`crate::charkernels`] consume. The per-pair set kernels
//! then reduce to allocation-free sorted-merge intersections and sparse
//! dot products, and the char-level measures to bit-parallel /
//! scratch-buffer sweeps with no per-pair allocation.
//!
//! # Arena layout
//!
//! The analysis material lives in a handful of contiguous per-table slabs
//! owned by [`TableAnalysis`] — one `u32` slab for every id sequence, an
//! `f64` slab for TF/IDF weights, an `i16` slab for the narrowed char
//! ids, a `char` slab for the prefix sequences, and one `String` slab for
//! the collapsed forms. Each `(record, attr)` cell is described by a
//! fixed-size header of offsets/lengths in a dense row-major array
//! (`record * n_attrs + attr`), and **all segments of one value are
//! adjacent** in the `u32` slab, so evaluating a pair's feature defs
//! reads sequential cache lines instead of chasing ~12 separately
//! allocated `Vec`s per value. [`AttrView`] is the borrowed accessor
//! type: a `Copy` pair of pointers whose methods return slices into the
//! slabs.
//!
//! The build is two-pass deterministic: pass 1 interns the shared pools;
//! pass 2 analyzes records in parallel into *record-local* slab chunks,
//! then a serial stitch appends the chunks in record order and rebases
//! their offsets. Offsets therefore depend only on the input data and
//! its order — never on the thread count — so the slabs (not just the
//! values read out of them) are byte-identical at 1/2/8 threads.
//!
//! # Bit-identity contract
//!
//! Every kernel here must return the **exact same bits** as its
//! string-based reference implementation (`jaccard`, `cosine`, `exact`,
//! `phonetic`), including the empty-input and NaN conventions. Two design
//! rules make that possible:
//!
//! * **Interned ids are lexicographic ranks.** The token pool is sorted,
//!   so id order equals string order and the cosine merge-join visits
//!   matching tokens in the same sequence as the reference — float
//!   accumulation order is unchanged.
//! * **TF/IDF vectors store raw weights plus a precomputed norm** (not
//!   pre-divided weights), so the final `(dot / (na * nb)).clamp(..)`
//!   is computed by the same expression as the reference.
//!
//! The property suite (`tests/analysis_equivalence.rs`) enforces the
//! contract with `f64::to_bits` equality on random inputs, and checks
//! slab-offset identity across thread counts.

use crate::cosine::TfIdfModel;
use crate::record::{AttrType, Record, RecordId, Table};
use crate::tokenize::{normalize, qgrams, words};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

// Segment ranks of one value's runs inside the shared `u32` slab. All
// segments of a value are adjacent (segment `k` ends where `k + 1`
// starts), so a header stores N_SEGS + 1 boundaries, not lengths.
const SEG_WORDS: usize = 0; // distinct word-token ids, sorted
const SEG_GRAMS: usize = 1; // distinct 3-gram ids, sorted
const SEG_SOUNDEX: usize = 2; // packed soundex codes, sorted, deduped
const SEG_TFIDF_IDS: usize = 3; // TF/IDF token ids (weights in f64 slab)
const SEG_RAW_CHARS: usize = 4; // raw-value char ids, in order
const SEG_LOWER_CHARS: usize = 5; // lowercased-value char ids, in order
const SEG_WORD_CHARS: usize = 6; // flattened token char ids, in order
const SEG_WORD_ENDS: usize = 7; // exclusive end of token k in WORD_CHARS
const SEG_WORD_TOKEN_IDS: usize = 8; // pool id of token k, duplicates kept
const SEG_DEDUP_RANK: usize = 9; // rank into DEDUP_IDS of token k
const SEG_DEDUP_IDS: usize = 10; // distinct token ids, first-occurrence order
const SEG_DEDUP_FIRST: usize = 11; // first token index of DEDUP_IDS entry
const N_SEGS: usize = 12;

/// `value_id` sentinel marking a `(record, attr)` cell with no analysis
/// (null or non-text). Real ids are ranks into the distinct-value pool,
/// which a `u32`-indexed build can never fill to `u32::MAX` entries.
const MISSING: u32 = u32::MAX;

/// Fixed-size descriptor of one analyzed `(record, attr)` cell: offsets
/// and lengths into the owning [`TableAnalysis`] slabs. 88 bytes, stored
/// densely row-major — the only per-value metadata the arena keeps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct AttrHeader {
    /// Segment boundaries in the `u32` slab: segment `k` spans
    /// `segs[k]..segs[k + 1]` (absolute slab offsets after stitching).
    segs: [u32; N_SEGS + 1],
    /// Start of the TF/IDF weight run in the `f64` slab (its length is
    /// the `SEG_TFIDF_IDS` segment length).
    f64_off: u32,
    /// Start of the narrowed lowercase run in the `i16` slab (length =
    /// `SEG_LOWER_CHARS` length; meaningful only when the table narrows).
    i16_off: u32,
    /// Prefix-char run in the `char` slab.
    char_off: u32,
    char_len: u32,
    /// Collapsed-string run in the string slab (byte offsets).
    str_off: u32,
    str_len: u32,
    /// Rank of the raw value in the shared distinct-value pool, or
    /// [`MISSING`]. Id equality is raw-string equality — the char
    /// kernels key their whole-value memo cache on it.
    value_id: u32,
    /// `sqrt(Σ w²)` over the TF/IDF weights, accumulated in id order
    /// (identical to the reference's per-call norm computation).
    tfidf_norm: f64,
}

const MISSING_HEADER: AttrHeader = AttrHeader {
    segs: [0; N_SEGS + 1],
    f64_off: 0,
    i16_off: 0,
    char_off: 0,
    char_len: 0,
    str_off: 0,
    str_len: 0,
    value_id: MISSING,
    tfidf_norm: 0.0,
};

/// Borrowed view of one non-null text attribute value — the arena
/// replacement for the retired owned-`Vec` `AttrAnalysis` struct. `Copy`
/// (two pointers); every accessor returns a slice into the owning
/// [`TableAnalysis`] slabs, so consumers read sequential cache lines.
#[derive(Clone, Copy)]
pub struct AttrView<'a> {
    table: &'a TableAnalysis,
    h: &'a AttrHeader,
}

impl<'a> AttrView<'a> {
    #[inline]
    fn seg(&self, k: usize) -> &'a [u32] {
        &self.table.u32s[self.h.segs[k] as usize..self.h.segs[k + 1] as usize]
    }

    /// Normalized string with whitespace runs collapsed to single spaces
    /// (the form `exact_match` / `containment` compare).
    #[inline]
    pub fn collapsed(&self) -> &'a str {
        &self.table.text[self.h.str_off as usize..(self.h.str_off + self.h.str_len) as usize]
    }

    /// Chars of the *uncollapsed* normalized string, trimmed — the form
    /// `prefix_similarity` walks (interior whitespace runs preserved).
    #[inline]
    pub fn prefix_chars(&self) -> &'a [char] {
        &self.table.chars[self.h.char_off as usize..(self.h.char_off + self.h.char_len) as usize]
    }

    /// Interned ids of the distinct word tokens, sorted ascending.
    #[inline]
    pub fn word_ids(&self) -> &'a [u32] {
        self.seg(SEG_WORDS)
    }

    /// Interned ids of the distinct padded character 3-grams, sorted.
    #[inline]
    pub fn gram_ids(&self) -> &'a [u32] {
        self.seg(SEG_GRAMS)
    }

    /// Packed 4-byte Soundex codes of the word tokens, sorted, deduped.
    #[inline]
    pub fn soundex_codes(&self) -> &'a [u32] {
        self.seg(SEG_SOUNDEX)
    }

    /// TF/IDF token ids in id order — which is lexicographic token
    /// order, matching the reference merge-join. Empty when the
    /// attribute has no fitted TF/IDF model.
    #[inline]
    pub fn tfidf_ids(&self) -> &'a [u32] {
        self.seg(SEG_TFIDF_IDS)
    }

    /// TF/IDF weights, parallel to [`Self::tfidf_ids`].
    #[inline]
    pub fn tfidf_weights(&self) -> &'a [f64] {
        let len = self.h.segs[SEG_TFIDF_IDS + 1] - self.h.segs[SEG_TFIDF_IDS];
        &self.table.f64s[self.h.f64_off as usize..(self.h.f64_off + len) as usize]
    }

    /// `sqrt(Σ w²)` over the TF/IDF weights (see [`AttrHeader`]).
    #[inline]
    pub fn tfidf_norm(&self) -> f64 {
        self.h.tfidf_norm
    }

    /// Interned char ids (ranks into the task's shared char pool) of the
    /// **raw** value's scalars — the sequence Levenshtein, Jaro, and
    /// Jaro-Winkler walk. Ids are dense `0..distinct_chars`, so the
    /// bit-parallel kernels can use direct-indexed scratch tables; id
    /// equality is char equality (all char kernels need only equality).
    #[inline]
    pub fn raw_char_ids(&self) -> &'a [u32] {
        self.seg(SEG_RAW_CHARS)
    }

    /// Interned char ids of `str::to_lowercase` of the raw value (the
    /// str-level mapping, so context rules like final sigma match the
    /// reference exactly) — the sequence Smith-Waterman aligns.
    #[inline]
    pub fn lower_char_ids(&self) -> &'a [u32] {
        self.seg(SEG_LOWER_CHARS)
    }

    /// [`Self::lower_char_ids`] narrowed to `i16`, populated only when
    /// the shared char pool fits (`distinct_chars <= i16::MAX`, true for
    /// any real dataset). Smith-Waterman's inner loops compare and
    /// accumulate in 16-bit cells, doubling the auto-vectorized lane
    /// count; empty means the kernel falls back to the 32-bit path.
    #[inline]
    pub fn lower_char_i16(&self) -> &'a [i16] {
        if !self.table.narrow {
            return &[];
        }
        let len = self.h.segs[SEG_LOWER_CHARS + 1] - self.h.segs[SEG_LOWER_CHARS];
        &self.table.i16s[self.h.i16_off as usize..(self.h.i16_off + len) as usize]
    }

    /// Flattened interned char ids of the word tokens in occurrence
    /// order, duplicates kept — Monge-Elkan's inner strings.
    #[inline]
    pub fn word_char_ids(&self) -> &'a [u32] {
        self.seg(SEG_WORD_CHARS)
    }

    /// End offset (exclusive) into [`Self::word_char_ids`] of each word
    /// token: token `k` spans `word_ends[k-1]..word_ends[k]` (`0` for
    /// `k = 0`). Offsets are value-local.
    #[inline]
    pub fn word_ends(&self) -> &'a [u32] {
        self.seg(SEG_WORD_ENDS)
    }

    /// Interned pool id of each word token in occurrence order (parallel
    /// to [`Self::word_ends`], duplicates kept). Id equality is token
    /// equality — Monge-Elkan uses it to dedup inner comparisons.
    #[inline]
    pub fn word_token_ids(&self) -> &'a [u32] {
        self.seg(SEG_WORD_TOKEN_IDS)
    }

    /// Distinct entries of [`Self::word_token_ids`] in first-occurrence
    /// order (parallel to [`Self::word_dedup_first`]). Monge-Elkan reads
    /// these instead of re-deduplicating the token list on every pair.
    #[inline]
    pub fn word_dedup_ids(&self) -> &'a [u32] {
        self.seg(SEG_DEDUP_IDS)
    }

    /// Position of the first occurrence of each [`Self::word_dedup_ids`]
    /// entry, i.e. the representative token index compared for that id.
    #[inline]
    pub fn word_dedup_first(&self) -> &'a [u32] {
        self.seg(SEG_DEDUP_FIRST)
    }

    /// Rank into [`Self::word_dedup_ids`] of each token position
    /// (parallel to [`Self::word_token_ids`]), making per-token memo
    /// lookups O(1).
    #[inline]
    pub fn word_dedup_rank(&self) -> &'a [u32] {
        self.seg(SEG_DEDUP_RANK)
    }

    /// Rank of the **raw** value string in the task's shared sorted
    /// distinct-value pool (see [`AttrHeader::value_id`]).
    #[inline]
    pub fn value_id(&self) -> u32 {
        self.h.value_id
    }

    /// Char ids of word token `k` (see [`Self::word_ends`]).
    #[inline]
    pub fn word_token(&self, k: usize) -> &'a [u32] {
        let ends = self.word_ends();
        let base = self.h.segs[SEG_WORD_CHARS] as usize;
        let lo = if k == 0 { 0 } else { ends[k - 1] as usize };
        &self.table.u32s[base + lo..base + ends[k] as usize]
    }

    /// Number of word tokens (duplicates included).
    #[inline]
    pub fn n_word_tokens(&self) -> usize {
        self.word_ends().len()
    }
}

impl PartialEq for AttrView<'_> {
    /// Value equality of everything a view exposes (floats bitwise) —
    /// views into different arenas compare equal iff every derived form
    /// matches, which is what the determinism tests assert.
    fn eq(&self, other: &Self) -> bool {
        self.value_id() == other.value_id()
            && self.tfidf_norm().to_bits() == other.tfidf_norm().to_bits()
            && self.collapsed() == other.collapsed()
            && self.prefix_chars() == other.prefix_chars()
            && (0..N_SEGS).all(|k| self.seg(k) == other.seg(k))
            && self.lower_char_i16() == other.lower_char_i16()
            && self
                .tfidf_weights()
                .iter()
                .map(|w| w.to_bits())
                .eq(other.tfidf_weights().iter().map(|w| w.to_bits()))
    }
}

impl std::fmt::Debug for AttrView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttrView")
            .field("value_id", &self.value_id())
            .field("collapsed", &self.collapsed())
            .field("word_ids", &self.word_ids())
            .field("gram_ids", &self.gram_ids())
            .field("raw_char_ids", &self.raw_char_ids())
            .finish_non_exhaustive()
    }
}

/// Size and interning statistics of a built analysis (for perf logs and
/// the memory telemetry surfaced through run reports).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Records analyzed across both tables.
    pub records: usize,
    /// Non-null text values analyzed.
    pub values: usize,
    /// Distinct word tokens interned.
    pub distinct_words: usize,
    /// Distinct 3-grams interned.
    pub distinct_grams: usize,
    /// Distinct chars interned (raw, lowercased, and token scalars of
    /// both tables). Bounds every char id; the bit-parallel kernels size
    /// their direct-indexed scratch tables off this.
    pub distinct_chars: usize,
    /// Distinct raw text values interned across both tables — the pool
    /// behind [`AttrView::value_id`].
    pub distinct_values: usize,
    /// Bytes of the `u32` id slabs (both tables): every token/gram/
    /// soundex/char-id/offset sequence.
    pub id_bytes: usize,
    /// Bytes of the `f64` TF/IDF weight slabs.
    pub weight_bytes: usize,
    /// Bytes of the `i16` narrowed-char slabs.
    pub narrow_bytes: usize,
    /// Bytes of the `char` prefix slabs.
    pub char_bytes: usize,
    /// Bytes of the collapsed-string slabs.
    pub text_bytes: usize,
    /// Bytes of the dense row-major header arrays.
    pub header_bytes: usize,
    /// Total resident bytes of the arena (sum of the six fields above).
    pub resident_bytes: usize,
    /// Modeled resident bytes of the retired owned-`Vec` layout (15 heap
    /// containers + scalars per value, same payloads) — kept so the
    /// before/after of the arena repack stays observable in perf logs.
    pub owned_layout_bytes: usize,
}

/// Per-record analyses of one table, arena-packed: a dense row-major
/// header array over contiguous typed slabs (see the module docs).
/// `PartialEq` compares the raw slabs — equality means byte-identical
/// layout, which the thread-count determinism tests assert directly.
#[derive(Debug, PartialEq)]
pub struct TableAnalysis {
    n_records: usize,
    n_attrs: usize,
    /// True when `distinct_chars <= i16::MAX` and the `i16` slab holds
    /// the narrowed lowercase runs.
    narrow: bool,
    /// `headers[record * n_attrs + attr]`; `value_id == MISSING` marks
    /// null / non-text cells.
    headers: Vec<AttrHeader>,
    u32s: Vec<u32>,
    f64s: Vec<f64>,
    i16s: Vec<i16>,
    chars: Vec<char>,
    text: String,
}

impl TableAnalysis {
    /// The analysis of one attribute of one record, if it is text.
    #[inline]
    pub fn attr(&self, record: RecordId, attr: usize) -> Option<AttrView<'_>> {
        let h = &self.headers[record as usize * self.n_attrs + attr];
        if h.value_id == MISSING {
            None
        } else {
            Some(AttrView { table: self, h })
        }
    }

    /// Number of analyzed records.
    pub fn len(&self) -> usize {
        self.n_records
    }

    /// True when no records were analyzed.
    pub fn is_empty(&self) -> bool {
        self.n_records == 0
    }

    /// Resident bytes of this table's slabs + headers.
    fn tally(&self, stats: &mut AnalysisStats) {
        stats.id_bytes += self.u32s.len() * 4;
        stats.weight_bytes += self.f64s.len() * 8;
        stats.narrow_bytes += self.i16s.len() * 2;
        stats.char_bytes += self.chars.len() * std::mem::size_of::<char>();
        stats.text_bytes += self.text.len();
        stats.header_bytes += self.headers.len() * std::mem::size_of::<AttrHeader>();
        for h in &self.headers {
            if h.value_id == MISSING {
                continue;
            }
            stats.values += 1;
            stats.owned_layout_bytes += owned_layout_bytes(h, self.narrow);
        }
    }
}

/// Modeled bytes of one value under the retired per-value owned-`Vec`
/// layout: a 376-byte struct (15 `Vec`/`String` headers at 24 bytes plus
/// the scalar fields) and the same payloads, with TF/IDF stored as
/// 16-byte `(u32, f64)` pairs rather than split parallel runs.
fn owned_layout_bytes(h: &AttrHeader, narrow: bool) -> usize {
    let u32_total = (h.segs[N_SEGS] - h.segs[0]) as usize;
    let tfidf_len = (h.segs[SEG_TFIDF_IDS + 1] - h.segs[SEG_TFIDF_IDS]) as usize;
    let lower_len = (h.segs[SEG_LOWER_CHARS + 1] - h.segs[SEG_LOWER_CHARS]) as usize;
    376 + h.str_len as usize
        + h.char_len as usize * std::mem::size_of::<char>()
        + (u32_total - tfidf_len) * 4
        + tfidf_len * 16
        + if narrow { lower_len * 2 } else { 0 }
}

/// The analysis layer of one EM task: both tables, analyzed against a
/// shared intern pool (so ids are comparable across tables).
#[derive(Debug)]
pub struct TaskAnalysis {
    /// Analyses of table A's records.
    pub a: TableAnalysis,
    /// Analyses of table B's records.
    pub b: TableAnalysis,
    /// Build statistics.
    pub stats: AnalysisStats,
    /// Process-unique id of this analysis build. `value_id` / word ids
    /// are ranks into *this task's* pools, so cross-task caches (the char
    /// kernels' per-thread result cache) key on the generation to never
    /// serve an id interned by a different task. The counter only
    /// disambiguates cache entries — no output depends on its value.
    pub generation: u64,
}

impl TaskAnalysis {
    /// Analysis of attribute `attr` of record `rec` in table A.
    #[inline]
    pub fn attr_a(&self, rec: RecordId, attr: usize) -> Option<AttrView<'_>> {
        self.a.attr(rec, attr)
    }

    /// Analysis of attribute `attr` of record `rec` in table B.
    #[inline]
    pub fn attr_b(&self, rec: RecordId, attr: usize) -> Option<AttrView<'_>> {
        self.b.attr(rec, attr)
    }
}

/// Pack a 4-character ASCII Soundex code into a `u32` whose numeric order
/// equals the code's lexicographic order (big-endian byte packing).
fn pack_soundex(code: &str) -> u32 {
    let b = code.as_bytes();
    debug_assert_eq!(b.len(), 4, "soundex codes are 4 ASCII chars");
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

/// Narrow a slab cursor to the `u32` offsets the headers store. The
/// guard fires long after any realistic dataset (a 4-billion-entry id
/// slab is 16 GiB per table).
fn off32(n: usize) -> u32 {
    u32::try_from(n).expect("analysis slab exceeds u32 offsets")
}

/// Map sorted tokens to pool ids via binary search. The pool contains
/// every token of both tables by construction, so lookups cannot miss.
fn intern_sorted(tokens: &mut Vec<String>, pool: &[String]) -> Vec<u32> {
    tokens.sort_unstable();
    tokens.dedup();
    tokens
        .iter()
        .map(|t| {
            pool.binary_search(t).map(|i| i as u32).unwrap_or_else(|_| {
                panic!("token {t:?} missing from intern pool")
            })
        })
        .collect()
}

/// Record-local slab chunk: one parallel worker fills one of these per
/// record; the serial stitch concatenates them in record order.
#[derive(Default)]
struct Slabs {
    u32s: Vec<u32>,
    f64s: Vec<f64>,
    i16s: Vec<i16>,
    chars: Vec<char>,
    text: String,
}

/// Analyze one value, appending its material to `out` and returning a
/// header with *chunk-local* offsets (rebased during the stitch).
#[allow(clippy::too_many_arguments)]
fn analyze_value(
    s: &str,
    model: Option<&TfIdfModel>,
    word_pool: &[String],
    gram_pool: &[String],
    char_pool: &[char],
    value_pool: &[String],
    narrow: bool,
    out: &mut Slabs,
) -> AttrHeader {
    let value_id = value_pool
        .binary_search_by(|v| v.as_str().cmp(s))
        .map(|i| i as u32)
        .unwrap_or_else(|_| panic!("value {s:?} missing from intern pool"));
    let norm = normalize(s);
    let collapsed = norm.split_whitespace().collect::<Vec<_>>().join(" ");

    let intern_char = |c: char| -> u32 {
        char_pool
            .binary_search(&c)
            .map(|i| i as u32)
            .unwrap_or_else(|_| panic!("char {c:?} missing from intern pool"))
    };
    let raw_char_ids: Vec<u32> = s.chars().map(intern_char).collect();
    let lower_char_ids: Vec<u32> = s.to_lowercase().chars().map(intern_char).collect();

    let toks = words(s);
    // Token char material in occurrence order, duplicates kept: the order
    // and multiplicity Monge-Elkan's reference tokenization produces.
    let mut word_char_ids = Vec::new();
    let mut word_ends = Vec::with_capacity(toks.len());
    for w in &toks {
        word_char_ids.extend(w.chars().map(intern_char));
        word_ends.push(word_char_ids.len() as u32);
    }
    let word_token_ids: Vec<u32> = toks
        .iter()
        .map(|w| {
            word_pool
                .binary_search(w)
                .map(|i| i as u32)
                .unwrap_or_else(|_| panic!("token {w:?} missing from intern pool"))
        })
        .collect();

    // First-occurrence dedup of the token ids, hoisted out of the
    // Monge-Elkan inner loop (values typically hold well under a few
    // dozen tokens, so the quadratic scan here is negligible one-time
    // work against the per-pair rebuild it replaces).
    let mut word_dedup_ids: Vec<u32> = Vec::new();
    let mut word_dedup_first: Vec<u32> = Vec::new();
    let mut word_dedup_rank: Vec<u32> = Vec::with_capacity(word_token_ids.len());
    for (k, &id) in word_token_ids.iter().enumerate() {
        match word_dedup_ids.iter().position(|&x| x == id) {
            Some(r) => word_dedup_rank.push(r as u32),
            None => {
                word_dedup_rank.push(word_dedup_ids.len() as u32);
                word_dedup_ids.push(id);
                word_dedup_first.push(k as u32);
            }
        }
    }

    let mut soundex_codes: Vec<u32> = toks
        .iter()
        .filter_map(|w| crate::phonetic::soundex(w))
        .map(|c| pack_soundex(&c))
        .collect();
    soundex_codes.sort_unstable();
    soundex_codes.dedup();

    let mut word_toks = toks;
    let word_ids = intern_sorted(&mut word_toks, word_pool);
    let mut gram_toks = qgrams(s, 3);
    let gram_ids = intern_sorted(&mut gram_toks, gram_pool);

    let (tfidf_ids, tfidf_weights, tfidf_norm) = match model {
        Some(m) => {
            // The reference weight vector, token-for-token; ids preserve
            // its lexicographic order because ids are sorted ranks.
            let w = m.weights(s);
            let norm = w.iter().map(|(_, x)| x * x).sum::<f64>().sqrt();
            let mut ids = Vec::with_capacity(w.len());
            let mut weights = Vec::with_capacity(w.len());
            for (t, x) in w {
                let id = word_pool
                    .binary_search(&t)
                    .unwrap_or_else(|_| panic!("token {t:?} missing from intern pool"));
                ids.push(id as u32);
                weights.push(x);
            }
            debug_assert!(ids.windows(2).all(|p| p[0] < p[1]));
            (ids, weights, norm)
        }
        None => (Vec::new(), Vec::new(), 0.0),
    };

    // Append every segment of this value back-to-back in the u32 slab,
    // recording the boundaries. Fixed order = deterministic offsets.
    let mut segs = [0u32; N_SEGS + 1];
    let seg_runs: [&[u32]; N_SEGS] = [
        &word_ids,
        &gram_ids,
        &soundex_codes,
        &tfidf_ids,
        &raw_char_ids,
        &lower_char_ids,
        &word_char_ids,
        &word_ends,
        &word_token_ids,
        &word_dedup_rank,
        &word_dedup_ids,
        &word_dedup_first,
    ];
    for (k, run) in seg_runs.iter().enumerate() {
        segs[k] = off32(out.u32s.len());
        out.u32s.extend_from_slice(run);
    }
    segs[N_SEGS] = off32(out.u32s.len());

    let f64_off = off32(out.f64s.len());
    out.f64s.extend_from_slice(&tfidf_weights);
    let i16_off = off32(out.i16s.len());
    if narrow {
        out.i16s.extend(lower_char_ids.iter().map(|&c| c as i16));
    }
    let char_off = off32(out.chars.len());
    out.chars.extend(norm.trim().chars());
    let char_len = off32(out.chars.len()) - char_off;
    let str_off = off32(out.text.len());
    out.text.push_str(&collapsed);
    let str_len = off32(out.text.len()) - str_off;

    AttrHeader {
        segs,
        f64_off,
        i16_off,
        char_off,
        char_len,
        str_off,
        str_len,
        value_id,
        tfidf_norm,
    }
}

/// Build the analysis layer for a task's two tables in parallel.
///
/// `tfidf` is the vectorizer's per-attribute model list (`None` entries
/// for attributes without a corpus model). The intern pool is shared
/// across both tables and all text attributes, and ids are assigned in
/// lexicographic order — see the module docs for why that matters.
pub fn analyze_task(
    a: &Table,
    b: &Table,
    tfidf: &[Option<TfIdfModel>],
    threads: exec::Threads,
) -> TaskAnalysis {
    let text_attrs: Vec<usize> = a
        .schema
        .attrs
        .iter()
        .enumerate()
        .filter(|(_, at)| at.ty == AttrType::Text)
        .map(|(i, _)| i)
        .collect();

    // Pass 1: collect every word token, 3-gram, and char of both tables,
    // in parallel per record, then sort + dedup into the shared pools.
    // The char pool covers the raw scalars, the `str::to_lowercase`
    // scalars, and the token scalars — token chars are *not* a subset of
    // the lowercased string's (str-level lowercasing applies context
    // rules like final sigma that the char-wise token path does not).
    type Collected = (Vec<String>, Vec<String>, Vec<char>, Vec<String>);
    let collect = |t: &Table| -> Vec<Collected> {
        exec::par_map(threads, &t.records, |r: &Record| {
            let mut ws = Vec::new();
            let mut gs = Vec::new();
            let mut cs = Vec::new();
            let mut vs = Vec::new();
            for &ai in &text_attrs {
                if let Some(s) = r.value(ai).as_text() {
                    ws.extend(words(s));
                    gs.extend(qgrams(s, 3));
                    cs.extend(s.chars());
                    cs.extend(s.to_lowercase().chars());
                    vs.push(s.to_string());
                }
            }
            for w in &ws {
                cs.extend(w.chars());
            }
            cs.sort_unstable();
            cs.dedup();
            (ws, gs, cs, vs)
        })
    };
    let mut word_pool: Vec<String> = Vec::new();
    let mut gram_pool: Vec<String> = Vec::new();
    let mut char_pool: Vec<char> = Vec::new();
    let mut value_pool: Vec<String> = Vec::new();
    for t in [a, b] {
        for (ws, gs, cs, vs) in collect(t) {
            word_pool.extend(ws);
            gram_pool.extend(gs);
            char_pool.extend(cs);
            value_pool.extend(vs);
        }
    }
    word_pool.sort_unstable();
    word_pool.dedup();
    gram_pool.sort_unstable();
    gram_pool.dedup();
    char_pool.sort_unstable();
    char_pool.dedup();
    value_pool.sort_unstable();
    value_pool.dedup();
    let narrow = char_pool.len() <= i16::MAX as usize;

    // Pass 2: per-record analyses against the frozen pools, each worker
    // filling a record-local slab chunk; then a serial stitch appends
    // the chunks in record order and rebases the headers. Chunk contents
    // depend only on the record and the pools, and the stitch order only
    // on record order — so slab offsets are identical at any thread
    // count (asserted by the equivalence suite).
    let analyze_table = |t: &Table| -> TableAnalysis {
        let n_attrs = t.schema.attrs.len();
        let chunks: Vec<(Vec<AttrHeader>, Slabs)> =
            exec::par_map(threads, &t.records, |r: &Record| {
                let mut slabs = Slabs::default();
                let headers: Vec<AttrHeader> = r
                    .values
                    .iter()
                    .enumerate()
                    .map(|(ai, v)| match v.as_text() {
                        Some(s) => analyze_value(
                            s,
                            tfidf[ai].as_ref(),
                            &word_pool,
                            &gram_pool,
                            &char_pool,
                            &value_pool,
                            narrow,
                            &mut slabs,
                        ),
                        None => MISSING_HEADER,
                    })
                    .collect();
                (headers, slabs)
            });
        let mut table = TableAnalysis {
            n_records: t.len(),
            n_attrs,
            narrow,
            headers: Vec::with_capacity(t.len() * n_attrs),
            u32s: Vec::new(),
            f64s: Vec::new(),
            i16s: Vec::new(),
            chars: Vec::new(),
            text: String::new(),
        };
        for (headers, slabs) in chunks {
            let (bu, bf, bi, bc, bs) = (
                off32(table.u32s.len()),
                off32(table.f64s.len()),
                off32(table.i16s.len()),
                off32(table.chars.len()),
                off32(table.text.len()),
            );
            for mut h in headers {
                if h.value_id != MISSING {
                    for s in &mut h.segs {
                        *s += bu;
                    }
                    h.f64_off += bf;
                    h.i16_off += bi;
                    h.char_off += bc;
                    h.str_off += bs;
                }
                table.headers.push(h);
            }
            table.u32s.extend_from_slice(&slabs.u32s);
            table.f64s.extend_from_slice(&slabs.f64s);
            table.i16s.extend_from_slice(&slabs.i16s);
            table.chars.extend_from_slice(&slabs.chars);
            table.text.push_str(&slabs.text);
        }
        table
    };
    let ta = analyze_table(a);
    let tb = analyze_table(b);

    let mut stats = AnalysisStats {
        records: a.len() + b.len(),
        distinct_words: word_pool.len(),
        distinct_grams: gram_pool.len(),
        distinct_chars: char_pool.len(),
        distinct_values: value_pool.len(),
        ..Default::default()
    };
    for t in [&ta, &tb] {
        t.tally(&mut stats);
    }
    stats.resident_bytes = stats.id_bytes
        + stats.weight_bytes
        + stats.narrow_bytes
        + stats.char_bytes
        + stats.text_bytes
        + stats.header_bytes;

    static TASK_GENERATION: AtomicU64 = AtomicU64::new(1);
    let generation = TASK_GENERATION.fetch_add(1, AtomicOrdering::Relaxed);
    TaskAnalysis { a: ta, b: tb, stats, generation }
}

// ---- allocation-free kernels over precomputed analyses -------------------

/// `|a ∩ b|` of two sorted, deduped id slices (linear merge).
#[inline]
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    // Branchless two-pointer merge: on random id data the three-way
    // `match` mispredicts constantly; conditional increments keep the
    // loop body branch-free (the bound check is the only branch).
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        n += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    n
}

/// Jaccard over sorted id sets; mirrors `jaccard::jaccard_sets` exactly
/// (two empty sets → 1.0).
#[inline]
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    let inter = intersect_count(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Dice over sorted id sets; mirrors `jaccard::dice_sets` exactly.
#[inline]
pub fn dice_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.len() + b.len() == 0 {
        return 1.0;
    }
    let inter = intersect_count(a, b);
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient over sorted id sets; mirrors
/// `jaccard::overlap_sets` exactly (one empty set → 0.0 unless both are).
#[inline]
pub fn overlap_ids(a: &[u32], b: &[u32]) -> f64 {
    let min = a.len().min(b.len());
    if min == 0 {
        return if a.len() == b.len() { 1.0 } else { 0.0 };
    }
    intersect_count(a, b) as f64 / min as f64
}

/// Soundex-code-set similarity; mirrors `phonetic::soundex_similarity`
/// (both code sets empty → 1.0, exactly one empty → 0.0, else Jaccard).
#[inline]
pub fn soundex_pre(a: AttrView<'_>, b: AttrView<'_>) -> f64 {
    let (ca, cb) = (a.soundex_codes(), b.soundex_codes());
    if ca.is_empty() && cb.is_empty() {
        return 1.0;
    }
    if ca.is_empty() || cb.is_empty() {
        return 0.0;
    }
    let inter = intersect_count(ca, cb);
    let union = ca.len() + cb.len() - inter;
    inter as f64 / union as f64
}

/// TF/IDF cosine over precomputed sparse vectors; mirrors
/// `TfIdfModel::cosine` bit-for-bit (see the module docs). Ids and
/// weights are parallel runs, so the merge walks two dense `u32` lanes
/// and touches the `f64` lane only on hits.
#[inline]
pub fn cosine_pre(a: AttrView<'_>, b: AttrView<'_>) -> f64 {
    let (ia, ib) = (a.tfidf_ids(), b.tfidf_ids());
    if ia.is_empty() && ib.is_empty() {
        return 1.0;
    }
    if ia.is_empty() || ib.is_empty() {
        return 0.0;
    }
    let (wa, wb) = (a.tfidf_weights(), b.tfidf_weights());
    let mut dot = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    // Pointer advances are branchless (see intersect_count); the add
    // stays guarded so the accumulation order and terms are exactly the
    // reference's.
    while i < ia.len() && j < ib.len() {
        let (ka, kb) = (ia[i], ib[j]);
        if ka == kb {
            dot += wa[i] * wb[j];
        }
        i += usize::from(ka <= kb);
        j += usize::from(kb <= ka);
    }
    (dot / (a.tfidf_norm() * b.tfidf_norm())).clamp(0.0, 1.0)
}

/// Exact match on the collapsed normalized strings; mirrors
/// `exact::exact_match`.
#[inline]
pub fn exact_pre(a: AttrView<'_>, b: AttrView<'_>) -> f64 {
    f64::from(a.collapsed() == b.collapsed())
}

/// Substring containment on the collapsed normalized strings; mirrors
/// `exact::containment` (including the tie-break: equal lengths treat
/// the first argument as the needle).
#[inline]
pub fn containment_pre(a: AttrView<'_>, b: AttrView<'_>) -> f64 {
    let (na, nb) = (a.collapsed(), b.collapsed());
    let (short, long) = if na.len() <= nb.len() { (na, nb) } else { (nb, na) };
    if short.is_empty() {
        return f64::from(long.is_empty());
    }
    f64::from(long.contains(short))
}

/// Common-prefix ratio on the trimmed normalized char sequences; mirrors
/// `exact::prefix_similarity`.
#[inline]
pub fn prefix_pre(a: AttrView<'_>, b: AttrView<'_>) -> f64 {
    let (na, nb) = (a.prefix_chars(), b.prefix_chars());
    let min = na.len().min(nb.len());
    if min == 0 {
        return f64::from(na.len() == nb.len());
    }
    let common = na.iter().zip(nb.iter()).take_while(|(x, y)| x == y).count();
    common as f64 / min as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Attribute, Schema, Value};
    use crate::{exact, jaccard, phonetic};
    use std::sync::Arc;

    fn analyzed(values: &[&str]) -> (TaskAnalysis, Table, Table) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("t")]));
        let rows: Vec<Vec<Value>> = values.iter().map(|&s| vec![Value::Text(s.into())]).collect();
        let a = Table::new("a", schema.clone(), rows.clone());
        let b = Table::new("b", schema, rows);
        let docs: Vec<&str> = values.iter().copied().chain(values.iter().copied()).collect();
        let model = Some(TfIdfModel::fit(docs));
        let an = analyze_task(&a, &b, &[model], exec::Threads::new(2));
        (an, a, b)
    }

    #[test]
    fn set_kernels_match_references_bitwise() {
        let vals = ["kingston hyperx 4GB kit", "Kingston HyperX", "", "a a b", "  !!  "];
        let (an, a, b) = analyzed(&vals);
        for i in 0..vals.len() as u32 {
            for j in 0..vals.len() as u32 {
                let (x, y) = (
                    a.record(i).value(0).as_text().unwrap(),
                    b.record(j).value(0).as_text().unwrap(),
                );
                let (ra, rb) = (an.attr_a(i, 0).unwrap(), an.attr_b(j, 0).unwrap());
                let cases = [
                    (jaccard_ids(ra.word_ids(), rb.word_ids()), jaccard::jaccard_words(x, y)),
                    (jaccard_ids(ra.gram_ids(), rb.gram_ids()), jaccard::jaccard_qgrams(x, y, 3)),
                    (dice_ids(ra.word_ids(), rb.word_ids()), jaccard::dice_words(x, y)),
                    (overlap_ids(ra.word_ids(), rb.word_ids()), jaccard::overlap_words(x, y)),
                    (soundex_pre(ra, rb), phonetic::soundex_similarity(x, y)),
                    (exact_pre(ra, rb), exact::exact_match(x, y)),
                    (containment_pre(ra, rb), exact::containment(x, y)),
                    (prefix_pre(ra, rb), exact::prefix_similarity(x, y)),
                ];
                for (k, (got, want)) in cases.iter().enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "kernel {k} mismatch on ({x:?}, {y:?}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn cosine_matches_reference_bitwise() {
        let vals = ["kingston hyperx memory kit", "kingston valueram memory", "", "memory memory kit"];
        let (an, a, b) = analyzed(&vals);
        let docs: Vec<&str> = vals.iter().copied().chain(vals.iter().copied()).collect();
        let model = TfIdfModel::fit(docs);
        for i in 0..vals.len() as u32 {
            for j in 0..vals.len() as u32 {
                let (x, y) = (
                    a.record(i).value(0).as_text().unwrap(),
                    b.record(j).value(0).as_text().unwrap(),
                );
                let got = cosine_pre(an.attr_a(i, 0).unwrap(), an.attr_b(j, 0).unwrap());
                let want = model.cosine(x, y);
                assert_eq!(got.to_bits(), want.to_bits(), "cosine mismatch on ({x:?}, {y:?})");
            }
        }
    }

    #[test]
    fn null_values_have_no_analysis() {
        let schema = Arc::new(Schema::new(vec![
            Attribute::text("t"),
            Attribute::number("n"),
        ]));
        let a = Table::new(
            "a",
            schema.clone(),
            vec![vec![Value::Null, Value::Number(1.0)], vec!["x".into(), Value::Null]],
        );
        let b = Table::new("b", schema, vec![vec!["y".into(), Value::Number(2.0)]]);
        let an = analyze_task(&a, &b, &[None, None], exec::Threads::new(1));
        assert!(an.attr_a(0, 0).is_none(), "null text has no analysis");
        assert!(an.attr_a(1, 0).is_some());
        assert!(an.attr_a(0, 1).is_none(), "numeric attrs are not analyzed");
        assert!(an.attr_b(0, 0).is_some());
        assert_eq!(an.stats.records, 3);
        assert_eq!(an.stats.values, 2);
    }

    #[test]
    fn stats_count_interned_tokens() {
        let (an, _, _) = analyzed(&["alpha beta", "beta gamma"]);
        assert_eq!(an.stats.distinct_words, 3);
        assert!(an.stats.distinct_grams > 0);
        assert!(an.stats.resident_bytes > 0);
        assert_eq!(
            an.stats.resident_bytes,
            an.stats.id_bytes
                + an.stats.weight_bytes
                + an.stats.narrow_bytes
                + an.stats.char_bytes
                + an.stats.text_bytes
                + an.stats.header_bytes
        );
        assert!(
            an.stats.owned_layout_bytes > an.stats.resident_bytes - an.stats.header_bytes,
            "owned-layout model should dominate the packed payloads"
        );
    }

    #[test]
    fn views_are_contiguous_per_value() {
        // Every value's u32 segments are adjacent and in fixed order, so
        // a pair evaluation touches one contiguous byte range per value.
        let (an, _, _) = analyzed(&["alpha beta gamma", "beta beta delta", ""]);
        for i in 0..3u32 {
            let v = an.attr_a(i, 0).unwrap();
            let h = v.h;
            for k in 0..N_SEGS {
                assert!(h.segs[k] <= h.segs[k + 1], "segment {k} boundaries ordered");
            }
            assert_eq!(v.word_ids().len() + v.gram_ids().len(), {
                (h.segs[SEG_SOUNDEX] - h.segs[0]) as usize
            });
        }
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let vals = ["kingston hyperx", "corsair vengeance 8gb", "", "samsung evo"];
        let schema = Arc::new(Schema::new(vec![Attribute::text("t")]));
        let rows: Vec<Vec<Value>> = vals.iter().map(|&s| vec![Value::Text(s.into())]).collect();
        let a = Table::new("a", schema.clone(), rows.clone());
        let b = Table::new("b", schema, rows);
        let m = || Some(TfIdfModel::fit(vals.iter().copied()));
        let an1 = analyze_task(&a, &b, &[m()], exec::Threads::new(1));
        let an8 = analyze_task(&a, &b, &[m()], exec::Threads::new(8));
        for i in 0..vals.len() as u32 {
            assert_eq!(an1.attr_a(i, 0), an8.attr_a(i, 0));
        }
        // Stronger than value equality: the arenas themselves (headers,
        // slab contents, hence all offsets) are identical.
        assert_eq!(an1.a, an8.a);
        assert_eq!(an1.b, an8.b);
        assert_eq!(an1.stats, an8.stats);
    }
}
