//! Precomputed per-record analysis for the blocking hot path.
//!
//! Applying blocking rules to `A × B` (paper §4.3) evaluates set- and
//! vector-based similarity features on up to hundreds of millions of
//! pairs. The string-based kernels re-normalize, re-tokenize, and rebuild
//! hash sets from raw strings *per pair, per feature* — O(|A|·|B|) repeats
//! of work that only depends on one record at a time.
//!
//! This module hoists all of that per-record work into a [`TaskAnalysis`]
//! built once per task (in parallel through [`exec`]): for every record
//! and text attribute it precomputes the whitespace-collapsed normalized
//! string, the trimmed char sequence, interned word-token and 3-gram ids
//! as sorted `u32` vectors, packed Soundex code sets, the sparse TF/IDF
//! weight vector with its precomputed L2 norm, and the interned char-id
//! sequences (raw, lowercased, and per-word-token) that the char-level
//! kernels in [`crate::charkernels`] consume. The per-pair set kernels
//! then reduce to allocation-free sorted-merge intersections and sparse
//! dot products, and the char-level measures to bit-parallel /
//! scratch-buffer sweeps with no per-pair allocation.
//!
//! # Bit-identity contract
//!
//! Every kernel here must return the **exact same bits** as its
//! string-based reference implementation (`jaccard`, `cosine`, `exact`,
//! `phonetic`), including the empty-input and NaN conventions. Two design
//! rules make that possible:
//!
//! * **Interned ids are lexicographic ranks.** The token pool is sorted,
//!   so id order equals string order and the cosine merge-join visits
//!   matching tokens in the same sequence as the reference — float
//!   accumulation order is unchanged.
//! * **TF/IDF vectors store raw weights plus a precomputed norm** (not
//!   pre-divided weights), so the final `(dot / (na * nb)).clamp(..)`
//!   is computed by the same expression as the reference.
//!
//! The property suite (`tests/analysis_equivalence.rs`) enforces the
//! contract with `f64::to_bits` equality on random inputs.

use crate::cosine::TfIdfModel;
use crate::record::{AttrType, Record, RecordId, Table};
use crate::tokenize::{normalize, qgrams, words};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};

/// Precomputed forms of one non-null text attribute value.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrAnalysis {
    /// Normalized string with whitespace runs collapsed to single spaces
    /// (the form `exact_match` / `containment` compare).
    pub collapsed: String,
    /// Chars of the *uncollapsed* normalized string, trimmed — the form
    /// `prefix_similarity` walks (interior whitespace runs preserved).
    pub prefix_chars: Vec<char>,
    /// Interned ids of the distinct word tokens, sorted ascending.
    pub word_ids: Vec<u32>,
    /// Interned ids of the distinct padded character 3-grams, sorted.
    pub gram_ids: Vec<u32>,
    /// Packed 4-byte Soundex codes of the word tokens, sorted, deduped.
    pub soundex_codes: Vec<u32>,
    /// Sparse TF/IDF weights `(word id, tf·idf)` in id order — which is
    /// lexicographic token order, matching the reference merge-join.
    /// Empty when the attribute has no fitted TF/IDF model.
    pub tfidf: Vec<(u32, f64)>,
    /// `sqrt(Σ w²)` over `tfidf`, accumulated in id order (identical to
    /// the reference's per-call norm computation).
    pub tfidf_norm: f64,
    /// Interned char ids (ranks into the task's shared char pool) of the
    /// **raw** value's scalars — the sequence Levenshtein, Jaro, and
    /// Jaro-Winkler walk. Ids are dense `0..distinct_chars`, so the
    /// bit-parallel kernels can use direct-indexed scratch tables; id
    /// equality is char equality (all char kernels need only equality).
    pub raw_char_ids: Vec<u32>,
    /// Interned char ids of `str::to_lowercase` of the raw value (the
    /// str-level mapping, so context rules like final sigma match the
    /// reference exactly) — the sequence Smith-Waterman aligns.
    pub lower_char_ids: Vec<u32>,
    /// `lower_char_ids` narrowed to `i16`, populated only when the shared
    /// char pool fits (`distinct_chars <= i16::MAX`, true for any real
    /// dataset). Smith-Waterman's inner loops compare and accumulate in
    /// 16-bit cells, doubling the auto-vectorized lane count; empty means
    /// the kernel falls back to the 32-bit path.
    pub lower_char_i16: Vec<i16>,
    /// Flattened interned char ids of the word tokens in occurrence
    /// order, duplicates kept — Monge-Elkan's inner strings.
    pub word_char_ids: Vec<u32>,
    /// End offset (exclusive) into `word_char_ids` of each word token:
    /// token `k` spans `word_ends[k-1]..word_ends[k]` (`0` for `k = 0`).
    pub word_ends: Vec<u32>,
    /// Interned pool id of each word token in occurrence order (parallel
    /// to `word_ends`, duplicates kept). Id equality is token equality —
    /// Monge-Elkan uses it to dedup inner comparisons.
    pub word_token_ids: Vec<u32>,
    /// Distinct entries of `word_token_ids` in first-occurrence order
    /// (parallel to `word_dedup_first`). Monge-Elkan reads these instead
    /// of re-deduplicating the token list on every pair.
    pub word_dedup_ids: Vec<u32>,
    /// Position of the first occurrence of each `word_dedup_ids` entry,
    /// i.e. the representative token index compared for that id.
    pub word_dedup_first: Vec<u32>,
    /// Rank into `word_dedup_ids` of each token position (parallel to
    /// `word_token_ids`), making per-token memo lookups O(1).
    pub word_dedup_rank: Vec<u32>,
    /// Rank of the **raw** value string in the task's shared sorted
    /// distinct-value pool. Id equality is raw-string equality, hence
    /// equality of every derived form above — the char kernels use it to
    /// memoize whole-value results across the many record pairs that
    /// repeat an attribute value (cities, brands, venues, ...).
    pub value_id: u32,
}

impl AttrAnalysis {
    /// Char ids of word token `k` (see `word_ends`).
    #[inline]
    pub fn word_token(&self, k: usize) -> &[u32] {
        let lo = if k == 0 { 0 } else { self.word_ends[k - 1] as usize };
        &self.word_char_ids[lo..self.word_ends[k] as usize]
    }

    /// Number of word tokens (duplicates included).
    #[inline]
    pub fn n_word_tokens(&self) -> usize {
        self.word_ends.len()
    }
}

/// Size and interning statistics of a built analysis (for perf logs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Records analyzed across both tables.
    pub records: usize,
    /// Non-null text values analyzed.
    pub values: usize,
    /// Distinct word tokens interned.
    pub distinct_words: usize,
    /// Distinct 3-grams interned.
    pub distinct_grams: usize,
    /// Distinct chars interned (raw, lowercased, and token scalars of
    /// both tables). Bounds every char id; the bit-parallel kernels size
    /// their direct-indexed scratch tables off this.
    pub distinct_chars: usize,
    /// Distinct raw text values interned across both tables — the pool
    /// behind `AttrAnalysis::value_id`.
    pub distinct_values: usize,
    /// Approximate resident bytes of the analysis rows.
    pub approx_bytes: usize,
}

/// Per-record analyses of one table: `rows[record][attr]` is `Some` iff
/// that attribute value is non-null text.
#[derive(Debug)]
pub struct TableAnalysis {
    rows: Vec<Vec<Option<AttrAnalysis>>>,
}

impl TableAnalysis {
    /// The analysis of one attribute of one record, if it is text.
    #[inline]
    pub fn attr(&self, record: RecordId, attr: usize) -> Option<&AttrAnalysis> {
        self.rows[record as usize][attr].as_ref()
    }

    /// Number of analyzed records.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no records were analyzed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// The analysis layer of one EM task: both tables, analyzed against a
/// shared intern pool (so ids are comparable across tables).
#[derive(Debug)]
pub struct TaskAnalysis {
    /// Analyses of table A's records.
    pub a: TableAnalysis,
    /// Analyses of table B's records.
    pub b: TableAnalysis,
    /// Build statistics.
    pub stats: AnalysisStats,
    /// Process-unique id of this analysis build. `value_id` / word ids
    /// are ranks into *this task's* pools, so cross-task caches (the char
    /// kernels' per-thread result cache) key on the generation to never
    /// serve an id interned by a different task. The counter only
    /// disambiguates cache entries — no output depends on its value.
    pub generation: u64,
}

impl TaskAnalysis {
    /// Analysis of attribute `attr` of record `rec` in table A.
    #[inline]
    pub fn attr_a(&self, rec: RecordId, attr: usize) -> Option<&AttrAnalysis> {
        self.a.attr(rec, attr)
    }

    /// Analysis of attribute `attr` of record `rec` in table B.
    #[inline]
    pub fn attr_b(&self, rec: RecordId, attr: usize) -> Option<&AttrAnalysis> {
        self.b.attr(rec, attr)
    }
}

/// Pack a 4-character ASCII Soundex code into a `u32` whose numeric order
/// equals the code's lexicographic order (big-endian byte packing).
fn pack_soundex(code: &str) -> u32 {
    let b = code.as_bytes();
    debug_assert_eq!(b.len(), 4, "soundex codes are 4 ASCII chars");
    u32::from_be_bytes([b[0], b[1], b[2], b[3]])
}

/// Map sorted tokens to pool ids via binary search. The pool contains
/// every token of both tables by construction, so lookups cannot miss.
fn intern_sorted(tokens: &mut Vec<String>, pool: &[String]) -> Vec<u32> {
    tokens.sort_unstable();
    tokens.dedup();
    tokens
        .iter()
        .map(|t| {
            pool.binary_search(t).map(|i| i as u32).unwrap_or_else(|_| {
                panic!("token {t:?} missing from intern pool")
            })
        })
        .collect()
}

fn analyze_value(
    s: &str,
    model: Option<&TfIdfModel>,
    word_pool: &[String],
    gram_pool: &[String],
    char_pool: &[char],
    value_pool: &[String],
) -> AttrAnalysis {
    let value_id = value_pool
        .binary_search_by(|v| v.as_str().cmp(s))
        .map(|i| i as u32)
        .unwrap_or_else(|_| panic!("value {s:?} missing from intern pool"));
    let norm = normalize(s);
    let collapsed = norm.split_whitespace().collect::<Vec<_>>().join(" ");
    let prefix_chars: Vec<char> = norm.trim().chars().collect();

    let intern_char = |c: char| -> u32 {
        char_pool
            .binary_search(&c)
            .map(|i| i as u32)
            .unwrap_or_else(|_| panic!("char {c:?} missing from intern pool"))
    };
    let raw_char_ids: Vec<u32> = s.chars().map(intern_char).collect();
    let lower_char_ids: Vec<u32> = s.to_lowercase().chars().map(intern_char).collect();
    let lower_char_i16: Vec<i16> = if char_pool.len() <= i16::MAX as usize {
        lower_char_ids.iter().map(|&c| c as i16).collect()
    } else {
        Vec::new()
    };

    let toks = words(s);
    // Token char material in occurrence order, duplicates kept: the order
    // and multiplicity Monge-Elkan's reference tokenization produces.
    let mut word_char_ids = Vec::new();
    let mut word_ends = Vec::with_capacity(toks.len());
    for w in &toks {
        word_char_ids.extend(w.chars().map(intern_char));
        word_ends.push(word_char_ids.len() as u32);
    }
    let word_token_ids: Vec<u32> = toks
        .iter()
        .map(|w| {
            word_pool
                .binary_search(w)
                .map(|i| i as u32)
                .unwrap_or_else(|_| panic!("token {w:?} missing from intern pool"))
        })
        .collect();

    // First-occurrence dedup of the token ids, hoisted out of the
    // Monge-Elkan inner loop (values typically hold well under a few
    // dozen tokens, so the quadratic scan here is negligible one-time
    // work against the per-pair rebuild it replaces).
    let mut word_dedup_ids: Vec<u32> = Vec::new();
    let mut word_dedup_first: Vec<u32> = Vec::new();
    let mut word_dedup_rank: Vec<u32> = Vec::with_capacity(word_token_ids.len());
    for (k, &id) in word_token_ids.iter().enumerate() {
        match word_dedup_ids.iter().position(|&x| x == id) {
            Some(r) => word_dedup_rank.push(r as u32),
            None => {
                word_dedup_rank.push(word_dedup_ids.len() as u32);
                word_dedup_ids.push(id);
                word_dedup_first.push(k as u32);
            }
        }
    }

    let mut soundex_codes: Vec<u32> = toks
        .iter()
        .filter_map(|w| crate::phonetic::soundex(w))
        .map(|c| pack_soundex(&c))
        .collect();
    soundex_codes.sort_unstable();
    soundex_codes.dedup();

    let mut word_toks = toks;
    let word_ids = intern_sorted(&mut word_toks, word_pool);
    let mut gram_toks = qgrams(s, 3);
    let gram_ids = intern_sorted(&mut gram_toks, gram_pool);

    let (tfidf, tfidf_norm) = match model {
        Some(m) => {
            // The reference weight vector, token-for-token; ids preserve
            // its lexicographic order because ids are sorted ranks.
            let w = m.weights(s);
            let norm = w.iter().map(|(_, x)| x * x).sum::<f64>().sqrt();
            let ids: Vec<(u32, f64)> = w
                .into_iter()
                .map(|(t, x)| {
                    let id = word_pool
                        .binary_search(&t)
                        .unwrap_or_else(|_| panic!("token {t:?} missing from intern pool"));
                    (id as u32, x)
                })
                .collect();
            debug_assert!(ids.windows(2).all(|p| p[0].0 < p[1].0));
            (ids, norm)
        }
        None => (Vec::new(), 0.0),
    };

    AttrAnalysis {
        collapsed,
        prefix_chars,
        word_ids,
        gram_ids,
        soundex_codes,
        tfidf,
        tfidf_norm,
        raw_char_ids,
        lower_char_ids,
        lower_char_i16,
        word_char_ids,
        word_ends,
        word_token_ids,
        word_dedup_ids,
        word_dedup_first,
        word_dedup_rank,
        value_id,
    }
}

fn attr_bytes(a: &AttrAnalysis) -> usize {
    std::mem::size_of::<AttrAnalysis>()
        + a.collapsed.len()
        + a.prefix_chars.len() * std::mem::size_of::<char>()
        + (a.word_ids.len() + a.gram_ids.len() + a.soundex_codes.len()) * 4
        + (a.raw_char_ids.len()
            + a.lower_char_ids.len()
            + a.word_char_ids.len()
            + a.word_ends.len()
            + a.word_token_ids.len()
            + a.word_dedup_ids.len()
            + a.word_dedup_first.len()
            + a.word_dedup_rank.len())
            * 4
        + a.lower_char_i16.len() * 2
        + a.tfidf.len() * std::mem::size_of::<(u32, f64)>()
}

/// Build the analysis layer for a task's two tables in parallel.
///
/// `tfidf` is the vectorizer's per-attribute model list (`None` entries
/// for attributes without a corpus model). The intern pool is shared
/// across both tables and all text attributes, and ids are assigned in
/// lexicographic order — see the module docs for why that matters.
pub fn analyze_task(
    a: &Table,
    b: &Table,
    tfidf: &[Option<TfIdfModel>],
    threads: exec::Threads,
) -> TaskAnalysis {
    let text_attrs: Vec<usize> = a
        .schema
        .attrs
        .iter()
        .enumerate()
        .filter(|(_, at)| at.ty == AttrType::Text)
        .map(|(i, _)| i)
        .collect();

    // Pass 1: collect every word token, 3-gram, and char of both tables,
    // in parallel per record, then sort + dedup into the shared pools.
    // The char pool covers the raw scalars, the `str::to_lowercase`
    // scalars, and the token scalars — token chars are *not* a subset of
    // the lowercased string's (str-level lowercasing applies context
    // rules like final sigma that the char-wise token path does not).
    type Collected = (Vec<String>, Vec<String>, Vec<char>, Vec<String>);
    let collect = |t: &Table| -> Vec<Collected> {
        exec::par_map(threads, &t.records, |r: &Record| {
            let mut ws = Vec::new();
            let mut gs = Vec::new();
            let mut cs = Vec::new();
            let mut vs = Vec::new();
            for &ai in &text_attrs {
                if let Some(s) = r.value(ai).as_text() {
                    ws.extend(words(s));
                    gs.extend(qgrams(s, 3));
                    cs.extend(s.chars());
                    cs.extend(s.to_lowercase().chars());
                    vs.push(s.to_string());
                }
            }
            for w in &ws {
                cs.extend(w.chars());
            }
            cs.sort_unstable();
            cs.dedup();
            (ws, gs, cs, vs)
        })
    };
    let mut word_pool: Vec<String> = Vec::new();
    let mut gram_pool: Vec<String> = Vec::new();
    let mut char_pool: Vec<char> = Vec::new();
    let mut value_pool: Vec<String> = Vec::new();
    for t in [a, b] {
        for (ws, gs, cs, vs) in collect(t) {
            word_pool.extend(ws);
            gram_pool.extend(gs);
            char_pool.extend(cs);
            value_pool.extend(vs);
        }
    }
    word_pool.sort_unstable();
    word_pool.dedup();
    gram_pool.sort_unstable();
    gram_pool.dedup();
    char_pool.sort_unstable();
    char_pool.dedup();
    value_pool.sort_unstable();
    value_pool.dedup();

    // Pass 2: per-record analyses against the frozen pools.
    let analyze_table = |t: &Table| -> TableAnalysis {
        let rows = exec::par_map(threads, &t.records, |r: &Record| {
            r.values
                .iter()
                .enumerate()
                .map(|(ai, v)| {
                    v.as_text().map(|s| {
                        analyze_value(
                            s,
                            tfidf[ai].as_ref(),
                            &word_pool,
                            &gram_pool,
                            &char_pool,
                            &value_pool,
                        )
                    })
                })
                .collect::<Vec<Option<AttrAnalysis>>>()
        });
        TableAnalysis { rows }
    };
    let ta = analyze_table(a);
    let tb = analyze_table(b);

    let mut stats = AnalysisStats {
        records: a.len() + b.len(),
        distinct_words: word_pool.len(),
        distinct_grams: gram_pool.len(),
        distinct_chars: char_pool.len(),
        distinct_values: value_pool.len(),
        ..Default::default()
    };
    for t in [&ta, &tb] {
        for row in &t.rows {
            for cell in row.iter().flatten() {
                stats.values += 1;
                stats.approx_bytes += attr_bytes(cell);
            }
        }
    }

    static TASK_GENERATION: AtomicU64 = AtomicU64::new(1);
    let generation = TASK_GENERATION.fetch_add(1, AtomicOrdering::Relaxed);
    TaskAnalysis { a: ta, b: tb, stats, generation }
}

// ---- allocation-free kernels over precomputed analyses -------------------

/// `|a ∩ b|` of two sorted, deduped id slices (linear merge).
#[inline]
pub fn intersect_count(a: &[u32], b: &[u32]) -> usize {
    // Branchless two-pointer merge: on random id data the three-way
    // `match` mispredicts constantly; conditional increments keep the
    // loop body branch-free (the bound check is the only branch).
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        n += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    n
}

/// Jaccard over sorted id sets; mirrors `jaccard::jaccard_sets` exactly
/// (two empty sets → 1.0).
#[inline]
pub fn jaccard_ids(a: &[u32], b: &[u32]) -> f64 {
    let inter = intersect_count(a, b);
    let union = a.len() + b.len() - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Dice over sorted id sets; mirrors `jaccard::dice_sets` exactly.
#[inline]
pub fn dice_ids(a: &[u32], b: &[u32]) -> f64 {
    if a.len() + b.len() == 0 {
        return 1.0;
    }
    let inter = intersect_count(a, b);
    2.0 * inter as f64 / (a.len() + b.len()) as f64
}

/// Overlap coefficient over sorted id sets; mirrors
/// `jaccard::overlap_sets` exactly (one empty set → 0.0 unless both are).
#[inline]
pub fn overlap_ids(a: &[u32], b: &[u32]) -> f64 {
    let min = a.len().min(b.len());
    if min == 0 {
        return if a.len() == b.len() { 1.0 } else { 0.0 };
    }
    intersect_count(a, b) as f64 / min as f64
}

/// Soundex-code-set similarity; mirrors `phonetic::soundex_similarity`
/// (both code sets empty → 1.0, exactly one empty → 0.0, else Jaccard).
#[inline]
pub fn soundex_pre(a: &AttrAnalysis, b: &AttrAnalysis) -> f64 {
    let (ca, cb) = (&a.soundex_codes, &b.soundex_codes);
    if ca.is_empty() && cb.is_empty() {
        return 1.0;
    }
    if ca.is_empty() || cb.is_empty() {
        return 0.0;
    }
    let inter = intersect_count(ca, cb);
    let union = ca.len() + cb.len() - inter;
    inter as f64 / union as f64
}

/// TF/IDF cosine over precomputed sparse vectors; mirrors
/// `TfIdfModel::cosine` bit-for-bit (see the module docs).
#[inline]
pub fn cosine_pre(a: &AttrAnalysis, b: &AttrAnalysis) -> f64 {
    let (wa, wb) = (&a.tfidf, &b.tfidf);
    if wa.is_empty() && wb.is_empty() {
        return 1.0;
    }
    if wa.is_empty() || wb.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0f64;
    let (mut i, mut j) = (0usize, 0usize);
    // Pointer advances are branchless (see intersect_count); the add
    // stays guarded so the accumulation order and terms are exactly the
    // reference's.
    while i < wa.len() && j < wb.len() {
        let (ka, kb) = (wa[i].0, wb[j].0);
        if ka == kb {
            dot += wa[i].1 * wb[j].1;
        }
        i += usize::from(ka <= kb);
        j += usize::from(kb <= ka);
    }
    (dot / (a.tfidf_norm * b.tfidf_norm)).clamp(0.0, 1.0)
}

/// Exact match on the collapsed normalized strings; mirrors
/// `exact::exact_match`.
#[inline]
pub fn exact_pre(a: &AttrAnalysis, b: &AttrAnalysis) -> f64 {
    f64::from(a.collapsed == b.collapsed)
}

/// Substring containment on the collapsed normalized strings; mirrors
/// `exact::containment` (including the tie-break: equal lengths treat
/// the first argument as the needle).
#[inline]
pub fn containment_pre(a: &AttrAnalysis, b: &AttrAnalysis) -> f64 {
    let (na, nb) = (&a.collapsed, &b.collapsed);
    let (short, long) = if na.len() <= nb.len() { (na, nb) } else { (nb, na) };
    if short.is_empty() {
        return f64::from(long.is_empty());
    }
    f64::from(long.contains(short.as_str()))
}

/// Common-prefix ratio on the trimmed normalized char sequences; mirrors
/// `exact::prefix_similarity`.
#[inline]
pub fn prefix_pre(a: &AttrAnalysis, b: &AttrAnalysis) -> f64 {
    let (na, nb) = (&a.prefix_chars, &b.prefix_chars);
    let min = na.len().min(nb.len());
    if min == 0 {
        return f64::from(na.len() == nb.len());
    }
    let common = na.iter().zip(nb.iter()).take_while(|(x, y)| x == y).count();
    common as f64 / min as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{Attribute, Schema, Value};
    use crate::{exact, jaccard, phonetic};
    use std::sync::Arc;

    fn analyzed(values: &[&str]) -> (TaskAnalysis, Table, Table) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("t")]));
        let rows: Vec<Vec<Value>> = values.iter().map(|&s| vec![Value::Text(s.into())]).collect();
        let a = Table::new("a", schema.clone(), rows.clone());
        let b = Table::new("b", schema, rows);
        let docs: Vec<&str> = values.iter().copied().chain(values.iter().copied()).collect();
        let model = Some(TfIdfModel::fit(docs));
        let an = analyze_task(&a, &b, &[model], exec::Threads::new(2));
        (an, a, b)
    }

    #[test]
    fn set_kernels_match_references_bitwise() {
        let vals = ["kingston hyperx 4GB kit", "Kingston HyperX", "", "a a b", "  !!  "];
        let (an, a, b) = analyzed(&vals);
        for i in 0..vals.len() as u32 {
            for j in 0..vals.len() as u32 {
                let (x, y) = (
                    a.record(i).value(0).as_text().unwrap(),
                    b.record(j).value(0).as_text().unwrap(),
                );
                let (ra, rb) = (an.attr_a(i, 0).unwrap(), an.attr_b(j, 0).unwrap());
                let cases = [
                    (jaccard_ids(&ra.word_ids, &rb.word_ids), jaccard::jaccard_words(x, y)),
                    (jaccard_ids(&ra.gram_ids, &rb.gram_ids), jaccard::jaccard_qgrams(x, y, 3)),
                    (dice_ids(&ra.word_ids, &rb.word_ids), jaccard::dice_words(x, y)),
                    (overlap_ids(&ra.word_ids, &rb.word_ids), jaccard::overlap_words(x, y)),
                    (soundex_pre(ra, rb), phonetic::soundex_similarity(x, y)),
                    (exact_pre(ra, rb), exact::exact_match(x, y)),
                    (containment_pre(ra, rb), exact::containment(x, y)),
                    (prefix_pre(ra, rb), exact::prefix_similarity(x, y)),
                ];
                for (k, (got, want)) in cases.iter().enumerate() {
                    assert_eq!(
                        got.to_bits(),
                        want.to_bits(),
                        "kernel {k} mismatch on ({x:?}, {y:?}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn cosine_matches_reference_bitwise() {
        let vals = ["kingston hyperx memory kit", "kingston valueram memory", "", "memory memory kit"];
        let (an, a, b) = analyzed(&vals);
        let docs: Vec<&str> = vals.iter().copied().chain(vals.iter().copied()).collect();
        let model = TfIdfModel::fit(docs);
        for i in 0..vals.len() as u32 {
            for j in 0..vals.len() as u32 {
                let (x, y) = (
                    a.record(i).value(0).as_text().unwrap(),
                    b.record(j).value(0).as_text().unwrap(),
                );
                let got = cosine_pre(an.attr_a(i, 0).unwrap(), an.attr_b(j, 0).unwrap());
                let want = model.cosine(x, y);
                assert_eq!(got.to_bits(), want.to_bits(), "cosine mismatch on ({x:?}, {y:?})");
            }
        }
    }

    #[test]
    fn null_values_have_no_analysis() {
        let schema = Arc::new(Schema::new(vec![
            Attribute::text("t"),
            Attribute::number("n"),
        ]));
        let a = Table::new(
            "a",
            schema.clone(),
            vec![vec![Value::Null, Value::Number(1.0)], vec!["x".into(), Value::Null]],
        );
        let b = Table::new("b", schema, vec![vec!["y".into(), Value::Number(2.0)]]);
        let an = analyze_task(&a, &b, &[None, None], exec::Threads::new(1));
        assert!(an.attr_a(0, 0).is_none(), "null text has no analysis");
        assert!(an.attr_a(1, 0).is_some());
        assert!(an.attr_a(0, 1).is_none(), "numeric attrs are not analyzed");
        assert!(an.attr_b(0, 0).is_some());
        assert_eq!(an.stats.records, 3);
        assert_eq!(an.stats.values, 2);
    }

    #[test]
    fn stats_count_interned_tokens() {
        let (an, _, _) = analyzed(&["alpha beta", "beta gamma"]);
        assert_eq!(an.stats.distinct_words, 3);
        assert!(an.stats.distinct_grams > 0);
        assert!(an.stats.approx_bytes > 0);
    }

    #[test]
    fn parallel_build_is_deterministic() {
        let vals = ["kingston hyperx", "corsair vengeance 8gb", "", "samsung evo"];
        let schema = Arc::new(Schema::new(vec![Attribute::text("t")]));
        let rows: Vec<Vec<Value>> = vals.iter().map(|&s| vec![Value::Text(s.into())]).collect();
        let a = Table::new("a", schema.clone(), rows.clone());
        let b = Table::new("b", schema, rows);
        let m = || Some(TfIdfModel::fit(vals.iter().copied()));
        let an1 = analyze_task(&a, &b, &[m()], exec::Threads::new(1));
        let an8 = analyze_task(&a, &b, &[m()], exec::Threads::new(8));
        for i in 0..vals.len() as u32 {
            assert_eq!(an1.attr_a(i, 0), an8.attr_a(i, 0));
        }
        assert_eq!(an1.stats, an8.stats);
    }
}
