//! Exact-match, containment, and prefix similarities.

use crate::tokenize::normalize;

/// 1.0 if the normalized strings are equal, else 0.0.
pub fn exact_match(a: &str, b: &str) -> f64 {
    let na: String = normalize(a).split_whitespace().collect::<Vec<_>>().join(" ");
    let nb: String = normalize(b).split_whitespace().collect::<Vec<_>>().join(" ");
    f64::from(na == nb)
}

/// 1.0 if the normalized shorter string occurs as a substring of the longer
/// one, else 0.0. Catches abbreviated vs. full descriptions.
pub fn containment(a: &str, b: &str) -> f64 {
    let na: String = normalize(a).split_whitespace().collect::<Vec<_>>().join(" ");
    let nb: String = normalize(b).split_whitespace().collect::<Vec<_>>().join(" ");
    let (short, long) = if na.len() <= nb.len() { (&na, &nb) } else { (&nb, &na) };
    if short.is_empty() {
        return f64::from(long.is_empty());
    }
    f64::from(long.contains(short.as_str()))
}

/// Length of the common prefix of the normalized strings, divided by the
/// length of the shorter one. Ranges over `[0, 1]`.
pub fn prefix_similarity(a: &str, b: &str) -> f64 {
    let na = normalize(a);
    let nb = normalize(b);
    let na: Vec<char> = na.trim().chars().collect();
    let nb: Vec<char> = nb.trim().chars().collect();
    let min = na.len().min(nb.len());
    if min == 0 {
        return f64::from(na.len() == nb.len());
    }
    let common = na
        .iter()
        .zip(nb.iter())
        .take_while(|(x, y)| x == y)
        .count();
    common as f64 / min as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_ignores_case_and_punct() {
        assert_eq!(exact_match("Mc-Donald's!", "mc donald s"), 1.0);
        assert_eq!(exact_match("a", "b"), 0.0);
    }

    #[test]
    fn containment_finds_substrings() {
        assert_eq!(containment("HyperX", "Kingston HyperX 4GB"), 1.0);
        assert_eq!(containment("Kingston HyperX 4GB", "HyperX"), 1.0);
        assert_eq!(containment("corsair", "kingston"), 0.0);
    }

    #[test]
    fn containment_empty() {
        assert_eq!(containment("", ""), 1.0);
        assert_eq!(containment("", "a"), 0.0);
    }

    #[test]
    fn prefix_basic() {
        assert_eq!(prefix_similarity("data mining", "data mining 2e"), 1.0);
        assert_eq!(prefix_similarity("abcd", "abzz"), 0.5);
        assert_eq!(prefix_similarity("", ""), 1.0);
        assert_eq!(prefix_similarity("", "x"), 0.0);
    }
}
