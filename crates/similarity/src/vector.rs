//! Feature-vector construction for tuple pairs.
//!
//! [`FeatureVectorizer`] is fitted once per EM task: it builds the feature
//! library for the shared schema and fits one TF/IDF corpus model per text
//! attribute over *both* tables. It can then turn any `(a, b)` record pair
//! into an `f64` feature vector, or — crucial for cheap blocking-rule
//! application over the full Cartesian product (paper §4.3) — compute just
//! a single feature of a pair.
//!
//! Missing values produce `NaN` features; the forest learner handles those
//! with learned missing-value routing (see the `forest` crate).

use crate::analysis::{self, AttrView, TaskAnalysis};
use crate::charkernels;
use crate::cosine::TfIdfModel;
use crate::features::{FeatureDef, FeatureKind, FeatureLibrary};
use crate::record::{Record, Schema, Table, Value};
use crate::{align, edit, exact, jaccard, jaro, monge_elkan, numeric, phonetic};
use serde::{Deserialize, Serialize};

/// Fitted vectorizer for one EM task (one schema, two tables).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureVectorizer {
    lib: FeatureLibrary,
    /// TF/IDF model per attribute index (None for numeric attributes).
    tfidf: Vec<Option<TfIdfModel>>,
}

impl FeatureVectorizer {
    /// Fit a vectorizer over the two tables of an EM task.
    ///
    /// # Panics
    /// Panics if the tables do not share a schema.
    pub fn fit(a: &Table, b: &Table) -> Self {
        assert_eq!(
            a.schema, b.schema,
            "tables of an EM task must share a schema"
        );
        let lib = FeatureLibrary::for_schema(&a.schema);
        let needs: Vec<bool> = a
            .schema
            .attrs
            .iter()
            .enumerate()
            .map(|(ai, _)| {
                lib.defs
                    .iter()
                    .any(|d| d.attr == ai && d.kind.needs_corpus())
            })
            .collect();
        let tfidf = needs
            .iter()
            .enumerate()
            .map(|(ai, &needed)| {
                if !needed {
                    return None;
                }
                let docs = a
                    .records
                    .iter()
                    .chain(b.records.iter())
                    .filter_map(|r| r.value(ai).as_text());
                Some(TfIdfModel::fit(docs))
            })
            .collect();
        FeatureVectorizer { lib, tfidf }
    }

    /// The feature library (defines vector layout).
    pub fn library(&self) -> &FeatureLibrary {
        &self.lib
    }

    /// Number of features per vector.
    pub fn n_features(&self) -> usize {
        self.lib.len()
    }

    /// True when `attr` has a fitted TF/IDF corpus model. Without one,
    /// `CosineTfIdf` features of that attribute are always `NaN` — the
    /// blocking planner uses this to decide indexability.
    pub fn has_corpus_model(&self, attr: usize) -> bool {
        self.tfidf.get(attr).is_some_and(|m| m.is_some())
    }

    /// Compute the full feature vector for a record pair.
    pub fn vectorize(&self, a: &Record, b: &Record) -> Vec<f64> {
        self.lib
            .defs
            .iter()
            .enumerate()
            .map(|(fi, _)| self.feature(fi, a, b))
            .collect()
    }

    /// Compute a single feature (by library index) for a record pair.
    /// Returns `NaN` when either value is missing or mistyped.
    pub fn feature(&self, idx: usize, a: &Record, b: &Record) -> f64 {
        let def = &self.lib.defs[idx];
        let va = a.value(def.attr);
        let vb = b.value(def.attr);
        compute_feature(def, va, vb, self.tfidf[def.attr].as_ref())
    }

    /// Build the precomputed analysis layer for a task's two tables (see
    /// [`crate::analysis`]). The result feeds [`Self::feature_pre`] /
    /// [`Self::vectorize_pre`], whose outputs are bit-identical to the
    /// string-based [`Self::feature`] / [`Self::vectorize`].
    pub fn analyze(&self, a: &Table, b: &Table, threads: exec::Threads) -> TaskAnalysis {
        analysis::analyze_task(a, b, &self.tfidf, threads)
    }

    /// [`Self::feature`] through the precomputed analysis: set/vector
    /// kernels run allocation-free over interned ids, and character-level
    /// measures (edit distance, Jaro/Jaro-Winkler, Monge-Elkan,
    /// Smith-Waterman) run over the precomputed char-id material in
    /// [`crate::charkernels`] — Levenshtein via Myers' bit-parallel
    /// algorithm, the rest via zero-alloc scratch rewrites. Only the
    /// numeric comparators fall through to the reference path (they are
    /// already allocation-free).
    ///
    /// `a` and `b` must be records of the tables `an` was built from.
    pub fn feature_pre(&self, idx: usize, a: &Record, b: &Record, an: &TaskAnalysis) -> f64 {
        let def = &self.lib.defs[idx];
        let ra = an.attr_a(a.id, def.attr);
        let rb = an.attr_b(b.id, def.attr);
        charkernels::with_scratch(|s| self.feature_pre_with(idx, a, b, an, ra, rb, s))
    }

    /// [`Self::feature_pre`] with the per-attribute analyses and the
    /// char-kernel scratch already in hand — the shared body that lets
    /// [`Self::vectorize_pre`] hoist both out of the per-feature loop.
    #[allow(clippy::too_many_arguments)] // hoisted per-pair state, private
    fn feature_pre_with(
        &self,
        idx: usize,
        a: &Record,
        b: &Record,
        an: &TaskAnalysis,
        ra: Option<AttrView<'_>>,
        rb: Option<AttrView<'_>>,
        s: &mut charkernels::CharScratch,
    ) -> f64 {
        let def = &self.lib.defs[idx];
        match def.kind {
            FeatureKind::JaccardWords
            | FeatureKind::Jaccard3Grams
            | FeatureKind::OverlapWords
            | FeatureKind::DiceWords
            | FeatureKind::CosineTfIdf
            | FeatureKind::ExactMatch
            | FeatureKind::Containment
            | FeatureKind::PrefixSim
            | FeatureKind::Soundex
            | FeatureKind::Levenshtein
            | FeatureKind::Jaro
            | FeatureKind::JaroWinkler
            | FeatureKind::MongeElkan
            | FeatureKind::SmithWaterman => {
                // An analysis exists iff the value is non-null text — the
                // same condition under which the reference path computes
                // (it returns NaN otherwise).
                let (Some(ra), Some(rb)) = (ra, rb) else {
                    return f64::NAN;
                };
                match def.kind {
                    FeatureKind::JaccardWords => {
                        analysis::jaccard_ids(ra.word_ids(), rb.word_ids())
                    }
                    FeatureKind::Jaccard3Grams => {
                        analysis::jaccard_ids(ra.gram_ids(), rb.gram_ids())
                    }
                    FeatureKind::OverlapWords => {
                        analysis::overlap_ids(ra.word_ids(), rb.word_ids())
                    }
                    FeatureKind::DiceWords => analysis::dice_ids(ra.word_ids(), rb.word_ids()),
                    FeatureKind::CosineTfIdf => {
                        if self.tfidf[def.attr].is_some() {
                            analysis::cosine_pre(ra, rb)
                        } else {
                            f64::NAN
                        }
                    }
                    FeatureKind::ExactMatch => analysis::exact_pre(ra, rb),
                    FeatureKind::Containment => analysis::containment_pre(ra, rb),
                    FeatureKind::PrefixSim => analysis::prefix_pre(ra, rb),
                    FeatureKind::Soundex => analysis::soundex_pre(ra, rb),
                    FeatureKind::Levenshtein => charkernels::levenshtein_pre_s(
                        ra,
                        rb,
                        an.stats.distinct_chars,
                        an.generation,
                        s,
                    ),
                    FeatureKind::Jaro => {
                        charkernels::jaro_pre_s(ra, rb, an.stats.distinct_chars, an.generation, s)
                    }
                    FeatureKind::JaroWinkler => charkernels::jaro_winkler_pre_s(
                        ra,
                        rb,
                        an.stats.distinct_chars,
                        an.generation,
                        s,
                    ),
                    FeatureKind::MongeElkan => charkernels::monge_elkan_pre_s(
                        ra,
                        rb,
                        an.stats.distinct_chars,
                        an.generation,
                        s,
                    ),
                    FeatureKind::SmithWaterman => {
                        charkernels::smith_waterman_pre_s(ra, rb, an.generation, s)
                    }
                    _ => unreachable!(),
                }
            }
            FeatureKind::NumExact | FeatureKind::NumRelSim => self.feature(idx, a, b),
        }
    }

    /// [`Self::vectorize`] through the precomputed analysis. The
    /// per-attribute analysis lookups and the char-kernel scratch access
    /// are hoisted out of the per-feature loop — with tens of features
    /// per schema they are a measurable share of the per-pair cost.
    pub fn vectorize_pre(&self, a: &Record, b: &Record, an: &TaskAnalysis) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.lib.len());
        self.vectorize_pre_into(a, b, an, &mut out);
        out
    }

    /// [`Self::vectorize_pre`] into a caller-reused buffer — the
    /// allocation-free form for per-pair hot loops. `out` is cleared and
    /// refilled; schemas wider than the stack-resident attr-lookup cap
    /// (far beyond any real schema) take two transient side tables.
    pub fn vectorize_pre_into(
        &self,
        a: &Record,
        b: &Record,
        an: &TaskAnalysis,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        const MAX_ATTRS: usize = 32;
        let n_attrs = self.tfidf.len();
        let mut abuf = [None; MAX_ATTRS];
        let mut bbuf = [None; MAX_ATTRS];
        let (mut va, mut vb) = (Vec::new(), Vec::new());
        let (ra, rb): (&[Option<AttrView<'_>>], &[Option<AttrView<'_>>]) =
            if n_attrs <= MAX_ATTRS {
                for ai in 0..n_attrs {
                    abuf[ai] = an.attr_a(a.id, ai);
                    bbuf[ai] = an.attr_b(b.id, ai);
                }
                (&abuf[..n_attrs], &bbuf[..n_attrs])
            } else {
                va.extend((0..n_attrs).map(|ai| an.attr_a(a.id, ai)));
                vb.extend((0..n_attrs).map(|ai| an.attr_b(b.id, ai)));
                (va.as_slice(), vb.as_slice())
            };
        charkernels::with_scratch(|s| {
            for fi in 0..self.lib.len() {
                let attr = self.lib.defs[fi].attr;
                out.push(self.feature_pre_with(fi, a, b, an, ra[attr], rb[attr], s));
            }
        })
    }
}

fn compute_feature(
    def: &FeatureDef,
    va: &Value,
    vb: &Value,
    tfidf: Option<&TfIdfModel>,
) -> f64 {
    match def.kind {
        FeatureKind::NumExact | FeatureKind::NumRelSim => {
            let (Some(x), Some(y)) = (va.as_number(), vb.as_number()) else {
                return f64::NAN;
            };
            match def.kind {
                FeatureKind::NumExact => numeric::num_exact(x, y),
                _ => numeric::num_rel_sim(x, y),
            }
        }
        _ => {
            let (Some(x), Some(y)) = (va.as_text(), vb.as_text()) else {
                return f64::NAN;
            };
            match def.kind {
                FeatureKind::Levenshtein => edit::levenshtein_similarity(x, y),
                FeatureKind::Jaro => jaro::jaro(x, y),
                FeatureKind::JaroWinkler => jaro::jaro_winkler(x, y),
                FeatureKind::JaccardWords => jaccard::jaccard_words(x, y),
                FeatureKind::Jaccard3Grams => jaccard::jaccard_qgrams(x, y, 3),
                FeatureKind::OverlapWords => jaccard::overlap_words(x, y),
                FeatureKind::DiceWords => jaccard::dice_words(x, y),
                FeatureKind::CosineTfIdf => tfidf
                    .map(|m| m.cosine(x, y))
                    .unwrap_or(f64::NAN),
                FeatureKind::MongeElkan => monge_elkan::monge_elkan_sym(x, y),
                FeatureKind::ExactMatch => exact::exact_match(x, y),
                FeatureKind::Containment => exact::containment(x, y),
                FeatureKind::PrefixSim => exact::prefix_similarity(x, y),
                FeatureKind::Soundex => phonetic::soundex_similarity(x, y),
                FeatureKind::SmithWaterman => align::smith_waterman_similarity(x, y),
                FeatureKind::NumExact | FeatureKind::NumRelSim => unreachable!(),
            }
        }
    }
}

/// Convenience: build a pair of tables sharing a schema from raw rows.
/// Useful in tests and examples.
pub fn table_pair(
    schema: Schema,
    name_a: &str,
    rows_a: Vec<Vec<Value>>,
    name_b: &str,
    rows_b: Vec<Vec<Value>>,
) -> (Table, Table) {
    let schema = std::sync::Arc::new(schema);
    (
        Table::new(name_a, schema.clone(), rows_a),
        Table::new(name_b, schema, rows_b),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Attribute;

    fn tables() -> (Table, Table) {
        let schema = Schema::new(vec![
            Attribute::text("title"),
            Attribute::number("pages"),
        ]);
        table_pair(
            schema,
            "a",
            vec![
                vec!["Data Mining".into(), Value::Number(234.0)],
                vec!["Databases".into(), Value::Null],
            ],
            "b",
            vec![
                vec!["Data Mining".into(), Value::Number(234.0)],
                vec!["Data Minning".into(), Value::Number(235.0)],
            ],
        )
    }

    #[test]
    fn vector_has_library_arity() {
        let (a, b) = tables();
        let v = FeatureVectorizer::fit(&a, &b);
        let x = v.vectorize(a.record(0), b.record(0));
        assert_eq!(x.len(), v.n_features());
    }

    #[test]
    fn identical_pair_scores_one_on_similarities() {
        let (a, b) = tables();
        let v = FeatureVectorizer::fit(&a, &b);
        let x = v.vectorize(a.record(0), b.record(0));
        for (i, def) in v.library().defs.iter().enumerate() {
            assert!(
                (x[i] - 1.0).abs() < 1e-9,
                "feature {} should be 1 on an identical pair, got {}",
                def.name(),
                x[i]
            );
        }
    }

    #[test]
    fn missing_value_yields_nan() {
        let (a, b) = tables();
        let v = FeatureVectorizer::fit(&a, &b);
        let x = v.vectorize(a.record(1), b.record(0));
        let pages_idx = v
            .library()
            .defs
            .iter()
            .position(|d| d.name() == "pages_num_rel")
            .unwrap();
        assert!(x[pages_idx].is_nan());
    }

    #[test]
    fn single_feature_matches_full_vector() {
        let (a, b) = tables();
        let v = FeatureVectorizer::fit(&a, &b);
        let full = v.vectorize(a.record(0), b.record(1));
        for (i, &expect) in full.iter().enumerate() {
            let single = v.feature(i, a.record(0), b.record(1));
            assert!(
                (single == expect) || (single.is_nan() && expect.is_nan()),
                "feature {i} mismatch"
            );
        }
    }

    #[test]
    #[should_panic(expected = "share a schema")]
    fn fit_rejects_mismatched_schemas() {
        let (a, _) = tables();
        let other = Table::new(
            "c",
            std::sync::Arc::new(Schema::new(vec![Attribute::text("x")])),
            vec![vec!["v".into()]],
        );
        FeatureVectorizer::fit(&a, &other);
    }

    #[test]
    fn near_duplicate_scores_high_but_not_one() {
        let (a, b) = tables();
        let v = FeatureVectorizer::fit(&a, &b);
        let lev = v
            .library()
            .defs
            .iter()
            .position(|d| d.name() == "title_lev")
            .unwrap();
        let x = v.feature(lev, a.record(0), b.record(1)); // "Data Mining" vs "Data Minning"
        assert!(x > 0.85 && x < 1.0, "{x}");
    }
}
