//! Levenshtein edit distance and its normalized similarity.

/// Levenshtein edit distance between two strings (unit costs, computed over
/// Unicode scalar values), with the standard two-row dynamic program.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the inner loop over the shorter string for cache friendliness.
    let (outer, inner) = if a.len() >= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev: Vec<usize> = (0..=inner.len()).collect();
    let mut cur: Vec<usize> = vec![0; inner.len() + 1];
    for (i, &oc) in outer.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &ic) in inner.iter().enumerate() {
            let sub = prev[j] + usize::from(oc != ic);
            let del = prev[j + 1] + 1;
            let ins = cur[j] + 1;
            cur[j + 1] = sub.min(del).min(ins);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[inner.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`:
/// `1 - distance / max(len_a, len_b)`. Two empty strings are similarity 1.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    let max = la.max(lb);
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_zero_distance() {
        assert_eq!(levenshtein("kitten", "kitten"), 0);
        assert_eq!(levenshtein_similarity("kitten", "kitten"), 1.0);
    }

    #[test]
    fn classic_kitten_sitting() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("", "ab"), 0.0);
    }

    #[test]
    fn symmetric() {
        assert_eq!(levenshtein("flaw", "lawn"), levenshtein("lawn", "flaw"));
    }

    #[test]
    fn unicode_counts_scalars() {
        assert_eq!(levenshtein("café", "cafe"), 1);
    }

    #[test]
    fn similarity_bounds() {
        let s = levenshtein_similarity("abcdef", "zzzzzz");
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(s, 0.0);
    }
}
