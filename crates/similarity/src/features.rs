//! The pre-supplied feature library (paper §4.1 step 3, §5.1).
//!
//! Given a [`Schema`], [`FeatureLibrary::for_schema`] enumerates every
//! applicable `(attribute, measure)` combination as a [`FeatureDef`]. Text
//! attributes get the string-similarity measures; numeric attributes get the
//! numeric comparators — "using all features that are appropriate (e.g., no
//! TF/IDF features for numeric attributes)" (§5.1).
//!
//! Each feature carries a relative **unit cost**: the Blocker ranks rules
//! partly by "the cost of computing the features mentioned in R" (§4.3),
//! so cheap rules (exact matches) are preferred over expensive ones
//! (Monge-Elkan) at equal precision and coverage.

use crate::record::{AttrType, Schema};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A similarity measure the library knows how to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureKind {
    /// Normalized Levenshtein similarity ([`crate::edit`]).
    Levenshtein,
    /// Jaro similarity ([`crate::jaro`]).
    Jaro,
    /// Jaro-Winkler similarity ([`crate::jaro`]).
    JaroWinkler,
    /// Jaccard over word tokens ([`crate::jaccard`]).
    JaccardWords,
    /// Jaccard over character 3-grams ([`crate::jaccard`]).
    Jaccard3Grams,
    /// Overlap coefficient over word tokens ([`crate::jaccard`]).
    OverlapWords,
    /// Dice coefficient over word tokens ([`crate::jaccard`]).
    DiceWords,
    /// TF/IDF cosine, fitted per attribute ([`crate::cosine`]).
    CosineTfIdf,
    /// Symmetric Monge-Elkan with Jaro-Winkler inner measure
    /// ([`crate::monge_elkan`]).
    MongeElkan,
    /// Exact match after normalization ([`crate::exact`]).
    ExactMatch,
    /// Substring containment ([`crate::exact`]).
    Containment,
    /// Common-prefix ratio ([`crate::exact`]).
    PrefixSim,
    /// Token-level Soundex overlap ([`crate::phonetic`]).
    Soundex,
    /// Normalized Smith-Waterman local alignment ([`crate::align`]).
    SmithWaterman,
    /// Numeric equality ([`crate::numeric`]).
    NumExact,
    /// Relative numeric similarity ([`crate::numeric`]).
    NumRelSim,
}

impl FeatureKind {
    /// All measures applicable to an attribute of the given type.
    pub fn for_attr_type(ty: AttrType) -> &'static [FeatureKind] {
        match ty {
            AttrType::Text => &[
                FeatureKind::Levenshtein,
                FeatureKind::Jaro,
                FeatureKind::JaroWinkler,
                FeatureKind::JaccardWords,
                FeatureKind::Jaccard3Grams,
                FeatureKind::OverlapWords,
                FeatureKind::DiceWords,
                FeatureKind::CosineTfIdf,
                FeatureKind::MongeElkan,
                FeatureKind::ExactMatch,
                FeatureKind::Containment,
                FeatureKind::PrefixSim,
                FeatureKind::Soundex,
                FeatureKind::SmithWaterman,
            ],
            AttrType::Number => &[FeatureKind::NumExact, FeatureKind::NumRelSim],
        }
    }

    /// Relative unit cost of computing the measure on one pair, in units
    /// of one `ExactMatch`. Calibrated against per-pair timings of the
    /// production (analysis/precomputed) kernels, measured by `bench
    /// --bin blocking_perf --kinds` as the per-dataset ratio to
    /// `ExactMatch`, median over the three synthetic datasets at scale
    /// 1.0. The sweep runs kinds in library order over one shared cache
    /// generation, so these are *marginal* costs within a full pass —
    /// e.g. Jaro-Winkler reads Jaro's cached score and prices near the
    /// probe. The PR 9 arena repack compressed the spread hard: with
    /// every segment of a value's analysis on adjacent cache lines, the
    /// set-merge kernels now cluster just above the header-compare
    /// kernels, and only the per-pair-quadratic char measures
    /// (Smith-Waterman, Monge-Elkan) and the wide 3-gram merges still
    /// stand apart — the old 23× top-to-bottom ratio is now ~15×.
    /// `tests::costs_track_measured_kernel_timings` keeps this table
    /// honest against kernel drift.
    pub fn unit_cost(self) -> f64 {
        match self {
            FeatureKind::NumRelSim => 0.4,
            FeatureKind::NumExact => 0.5,
            FeatureKind::ExactMatch | FeatureKind::PrefixSim => 1.0,
            FeatureKind::JaroWinkler => 1.7,
            FeatureKind::DiceWords | FeatureKind::OverlapWords => 2.1,
            FeatureKind::JaccardWords => 2.2,
            FeatureKind::CosineTfIdf | FeatureKind::Soundex => 2.3,
            FeatureKind::Containment => 2.4,
            FeatureKind::Levenshtein => 4.5,
            FeatureKind::Jaccard3Grams => 4.6,
            FeatureKind::Jaro => 6.0,
            FeatureKind::MongeElkan => 9.5,
            FeatureKind::SmithWaterman => 14.5,
        }
    }

    /// True if the measure needs a fitted TF/IDF corpus model.
    pub fn needs_corpus(self) -> bool {
        matches!(self, FeatureKind::CosineTfIdf)
    }

    /// Short lowercase mnemonic used in feature names.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FeatureKind::Levenshtein => "lev",
            FeatureKind::Jaro => "jaro",
            FeatureKind::JaroWinkler => "jw",
            FeatureKind::JaccardWords => "jac_w",
            FeatureKind::Jaccard3Grams => "jac_3g",
            FeatureKind::OverlapWords => "ovl_w",
            FeatureKind::DiceWords => "dice_w",
            FeatureKind::CosineTfIdf => "cos_tfidf",
            FeatureKind::MongeElkan => "me",
            FeatureKind::ExactMatch => "exact",
            FeatureKind::Containment => "contain",
            FeatureKind::PrefixSim => "prefix",
            FeatureKind::Soundex => "sdx",
            FeatureKind::SmithWaterman => "sw",
            FeatureKind::NumExact => "num_exact",
            FeatureKind::NumRelSim => "num_rel",
        }
    }
}

/// One feature: a measure applied to one attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureDef {
    /// Index of the attribute in the schema.
    pub attr: usize,
    /// Attribute name (denormalized for display).
    pub attr_name: String,
    /// The similarity measure.
    pub kind: FeatureKind,
}

impl FeatureDef {
    /// Display name, e.g. `"title_jw"`.
    pub fn name(&self) -> String {
        format!("{}_{}", self.attr_name, self.kind.mnemonic())
    }

    /// Relative computation cost (see [`FeatureKind::unit_cost`]).
    pub fn cost(&self) -> f64 {
        self.kind.unit_cost()
    }
}

impl fmt::Display for FeatureDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The full feature set generated for a schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FeatureLibrary {
    /// Features in index order; feature `i` of every vector is `defs[i]`.
    pub defs: Vec<FeatureDef>,
}

impl FeatureLibrary {
    /// Enumerate every applicable feature for the schema.
    pub fn for_schema(schema: &Schema) -> Self {
        let mut defs = Vec::new();
        for (ai, attr) in schema.attrs.iter().enumerate() {
            for &kind in FeatureKind::for_attr_type(attr.ty) {
                defs.push(FeatureDef {
                    attr: ai,
                    attr_name: attr.name.clone(),
                    kind,
                });
            }
        }
        FeatureLibrary { defs }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if the library is empty.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Feature names in index order.
    pub fn names(&self) -> Vec<String> {
        self.defs.iter().map(|d| d.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Attribute;

    #[test]
    fn library_covers_all_attr_measure_pairs() {
        let schema = Schema::new(vec![
            Attribute::text("title"),
            Attribute::number("pages"),
        ]);
        let lib = FeatureLibrary::for_schema(&schema);
        let n_text = FeatureKind::for_attr_type(AttrType::Text).len();
        let n_num = FeatureKind::for_attr_type(AttrType::Number).len();
        assert_eq!(lib.len(), n_text + n_num);
        assert!(lib.names().contains(&"title_jw".to_string()));
        assert!(lib.names().contains(&"pages_num_rel".to_string()));
        assert!(!lib.names().contains(&"pages_jw".to_string()));
    }

    #[test]
    fn costs_are_positive_and_ordered() {
        for ty in [AttrType::Text, AttrType::Number] {
            for &k in FeatureKind::for_attr_type(ty) {
                assert!(k.unit_cost() > 0.0);
            }
        }
        assert!(FeatureKind::MongeElkan.unit_cost() > FeatureKind::ExactMatch.unit_cost());
    }

    /// `unit_cost` claims a relative ordering of kernel costs; this test
    /// measures the production (analysis-path) kernels on a synthetic
    /// workload and checks the ordering for pairs the table separates
    /// widely (≥ 5x claimed ratio). The tolerance band is deliberately
    /// generous — the measured ratio only has to exceed 2x — so the test
    /// catches real miscalibration (a "cheap" kernel that is actually
    /// slower than an "expensive" one) without being flaky under load.
    /// Medians over repeated sweeps absorb scheduling noise.
    #[test]
    fn costs_track_measured_kernel_timings() {
        use crate::record::{Table, Value};
        use crate::vector::FeatureVectorizer;
        use std::sync::Arc;
        use std::time::Instant;

        let schema = Arc::new(Schema::new(vec![Attribute::text("title")]));
        let rows = |tag: &str| -> Vec<Vec<Value>> {
            (0..24)
                .map(|i| {
                    vec![Value::Text(format!(
                        "{tag} acme fastwidget model {} rev {} industrial grade steel {}",
                        i % 7,
                        i,
                        i * 31 % 97
                    ))]
                })
                .collect()
        };
        let a = Table::new("a", schema.clone(), rows("alpha"));
        let b = Table::new("b", schema, rows("beta"));
        let vz = FeatureVectorizer::fit(&a, &b);

        let median_ns = |kind: FeatureKind| -> f64 {
            let idx = vz
                .library()
                .defs
                .iter()
                .position(|d| d.kind == kind)
                .expect("kind in library");
            let mut reps: Vec<f64> = (0..5)
                .map(|_| {
                    // Fresh analysis per rep: its new cache generation
                    // flushes the char-kernel result cache, so every rep
                    // measures the kernel, not a table lookup.
                    let an = vz.analyze(&a, &b, exec::Threads::new(1));
                    let t0 = Instant::now();
                    let mut sink = 0.0;
                    for ra in &a.records {
                        for rb in &b.records {
                            sink += vz.feature_pre(idx, ra, rb, &an);
                        }
                    }
                    std::hint::black_box(sink);
                    t0.elapsed().as_nanos() as f64 / (a.records.len() * b.records.len()) as f64
                })
                .collect();
            reps.sort_by(|x, y| x.total_cmp(y));
            reps[reps.len() / 2]
        };

        // (expensive, cheap) pairs with a claimed cost ratio ≥ 5x. The
        // arena repack (PR 9) compressed the table, so the surviving
        // wide gaps all involve the quadratic char kernels; in exchange
        // the measured bound is tightened from 2x to 2.5x.
        let pairs = [
            (FeatureKind::MongeElkan, FeatureKind::ExactMatch),
            (FeatureKind::SmithWaterman, FeatureKind::OverlapWords),
            (FeatureKind::SmithWaterman, FeatureKind::CosineTfIdf),
            (FeatureKind::Jaro, FeatureKind::PrefixSim),
        ];
        for (hi, lo) in pairs {
            let claimed = hi.unit_cost() / lo.unit_cost();
            assert!(claimed >= 5.0, "{hi:?}/{lo:?} no longer widely separated; pick new pairs");
            let (t_hi, t_lo) = (median_ns(hi), median_ns(lo));
            assert!(
                t_hi > 2.5 * t_lo,
                "unit_cost says {hi:?} is {claimed:.0}x costlier than {lo:?}, but measured \
                 {t_hi:.0} ns vs {t_lo:.0} ns per pair — recalibrate the cost table"
            );
        }
    }

    #[test]
    fn only_tfidf_needs_corpus() {
        assert!(FeatureKind::CosineTfIdf.needs_corpus());
        assert!(!FeatureKind::Levenshtein.needs_corpus());
    }

    #[test]
    fn names_are_unique() {
        let schema = Schema::new(vec![
            Attribute::text("a"),
            Attribute::text("b"),
            Attribute::number("n"),
        ]);
        let lib = FeatureLibrary::for_schema(&schema);
        let mut names = lib.names();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }
}
