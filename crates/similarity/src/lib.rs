#![forbid(unsafe_code)]
//! # similarity — EM data model and similarity-feature library
//!
//! This crate provides the two substrates every other Corleone component is
//! built on:
//!
//! 1. **A relational data model for entity matching** ([`record`]): typed
//!    schemas, records, and tables. Corleone's setting (paper §2) is the
//!    classic one — find all pairs `(a ∈ A, b ∈ B)` from two tables that
//!    refer to the same real-world entity.
//! 2. **A similarity-feature library** ([`features`], [`vector`]): the
//!    "pre-supplied feature library" of paper §4.1 step 3. Each tuple pair is
//!    converted into a feature vector using string-similarity measures (edit
//!    distance, Jaccard, Jaro-Winkler, TF/IDF cosine, Monge-Elkan, …) and
//!    numeric comparators. Every feature carries a *unit cost* used by the
//!    Blocker's greedy rule-application ranking (paper §4.3).
//!
//! The individual similarity measures live in their own modules and are
//! usable standalone:
//!
//! ```
//! use similarity::edit::levenshtein_similarity;
//! let s = levenshtein_similarity("John Hopkins", "Johns Hopkins");
//! assert!(s > 0.9);
//! ```

pub mod align;
pub mod analysis;
pub mod charkernels;
pub mod cosine;
pub mod csv;
pub mod edit;
pub mod exact;
pub mod features;
pub mod index;
pub mod jaccard;
pub mod jaro;
pub mod monge_elkan;
pub mod numeric;
pub mod phonetic;
pub mod record;
pub mod tokenize;
pub mod vector;

pub use analysis::{AnalysisStats, AttrView, TableAnalysis, TaskAnalysis};
pub use features::{FeatureDef, FeatureKind, FeatureLibrary};
pub use index::{ExactIndex, InvertedIndex, ProbeScratch, SetMeasure, TokenSpace};
pub use record::{AttrType, Attribute, Record, RecordId, Schema, Table, Value};
pub use vector::FeatureVectorizer;
