//! Jaro and Jaro-Winkler similarity.

/// Jaro similarity in `[0, 1]`.
///
/// Matching characters must agree and be within
/// `max(|a|, |b|) / 2 - 1` positions of each other; transpositions are
/// counted over the matched subsequences.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    let b_matches: Vec<char> = b
        .iter()
        .enumerate()
        .filter(|(j, _)| b_taken[*j])
        .map(|(_, &c)| c)
        .collect();
    let transpositions = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    let t = transpositions as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by shared prefix length (up to 4)
/// with the standard scaling factor `p = 0.1`.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
    }

    #[test]
    fn identical_and_disjoint() {
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro_winkler("abc", "abc"), 1.0);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("", "a"), 0.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn winkler_bounded_by_one() {
        let s = jaro_winkler("prefix", "prefixxxxx");
        assert!(s <= 1.0 && s >= jaro("prefix", "prefixxxxx"));
    }

    #[test]
    fn symmetric() {
        assert!(close(jaro("CRATE", "TRACE"), jaro("TRACE", "CRATE")));
    }
}
