//! Relational data model for entity matching.
//!
//! Corleone matches tuples across two tables `A` and `B` that share a schema
//! (paper §2). Attributes are typed as free text or numbers; the feature
//! library ([`crate::features`]) picks applicable similarity measures per
//! attribute type, mirroring the paper's "using all features that are
//! appropriate (e.g., no TF/IDF features for numeric attributes)" (§5.1).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Identifier of a record within its table (dense, 0-based).
pub type RecordId = u32;

/// The type of an attribute, which determines the similarity features
/// generated for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// Free text: names, titles, addresses. Gets string-similarity features.
    Text,
    /// Numeric: prices, years, page counts. Gets numeric-difference features.
    Number,
}

/// A named, typed attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, e.g. `"title"`.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

impl Attribute {
    /// Create a text attribute.
    pub fn text(name: impl Into<String>) -> Self {
        Attribute { name: name.into(), ty: AttrType::Text }
    }

    /// Create a numeric attribute.
    pub fn number(name: impl Into<String>) -> Self {
        Attribute { name: name.into(), ty: AttrType::Number }
    }
}

/// An ordered list of attributes shared by both tables of an EM task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// Attributes in column order.
    pub attrs: Vec<Attribute>,
}

impl Schema {
    /// Build a schema from attributes.
    pub fn new(attrs: Vec<Attribute>) -> Self {
        Schema { attrs }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Index of the attribute with the given name, if any.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }
}

/// A single attribute value. `Null` models missing data, which is pervasive
/// in real EM inputs (e.g. products missing a model number).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// A text value.
    Text(String),
    /// A numeric value.
    Number(f64),
    /// Missing.
    Null,
}

impl Value {
    /// The text content, if this is a non-null text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The numeric content, if this is a non-null numeric value.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// True if the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s}"),
            Value::Number(x) => write!(f, "{x}"),
            Value::Null => write!(f, "<null>"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Number(x)
    }
}

/// A tuple: one value per schema attribute, plus a table-local id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Record {
    /// Dense 0-based id within the owning table.
    pub id: RecordId,
    /// Values, aligned with the schema's attributes.
    pub values: Vec<Value>,
}

impl Record {
    /// Create a record.
    pub fn new(id: RecordId, values: Vec<Value>) -> Self {
        Record { id, values }
    }

    /// Value of the `idx`-th attribute.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

/// A named table of records sharing a [`Schema`].
///
/// Schemas are reference-counted so the two tables of an EM task can share
/// one allocation and schema identity can be checked cheaply.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Human-readable table name (e.g. `"walmart_products"`).
    pub name: String,
    /// The shared schema.
    pub schema: Arc<Schema>,
    /// Records; `records[i].id == i`.
    pub records: Vec<Record>,
}

impl Table {
    /// Create a table, assigning dense ids to the given rows.
    pub fn new(name: impl Into<String>, schema: Arc<Schema>, rows: Vec<Vec<Value>>) -> Self {
        let records = rows
            .into_iter()
            .enumerate()
            .map(|(i, values)| {
                assert_eq!(
                    values.len(),
                    schema.len(),
                    "row arity must match schema arity"
                );
                Record::new(i as RecordId, values)
            })
            .collect();
        Table { name: name.into(), schema, records }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the table has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record with the given id.
    pub fn record(&self, id: RecordId) -> &Record {
        &self.records[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book_schema() -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Attribute::text("title"),
            Attribute::text("authors"),
            Attribute::number("pages"),
        ]))
    }

    #[test]
    fn schema_index_of_finds_attributes() {
        let s = book_schema();
        assert_eq!(s.index_of("title"), Some(0));
        assert_eq!(s.index_of("pages"), Some(2));
        assert_eq!(s.index_of("isbn"), None);
    }

    #[test]
    fn table_assigns_dense_ids() {
        let s = book_schema();
        let t = Table::new(
            "books",
            s,
            vec![
                vec!["Data Mining".into(), "Joe Smith".into(), Value::Number(234.0)],
                vec!["Databases".into(), Value::Null, Value::Number(512.0)],
            ],
        );
        assert_eq!(t.len(), 2);
        assert_eq!(t.record(0).id, 0);
        assert_eq!(t.record(1).id, 1);
        assert_eq!(t.record(1).value(1), &Value::Null);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_wrong_arity() {
        let s = book_schema();
        Table::new("books", s, vec![vec!["x".into()]]);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::from("a").as_text(), Some("a"));
        assert_eq!(Value::from(3.5).as_number(), Some(3.5));
        assert!(Value::Null.is_null());
        assert_eq!(Value::from("a").as_number(), None);
        assert_eq!(Value::Null.to_string(), "<null>");
    }
}
