//! Monge-Elkan hybrid similarity.
//!
//! For each token of the first string, find the best-matching token of the
//! second under an inner character-level measure (Jaro-Winkler here), then
//! average those maxima. Good at matching strings whose tokens were
//! individually corrupted or reordered ("Joe Smith" vs "Smith, Joseph").
//! Note the measure is asymmetric; [`monge_elkan_sym`] symmetrizes it.

use crate::jaro::jaro_winkler;
use crate::tokenize::words;

/// Asymmetric Monge-Elkan similarity of `a` against `b` with a Jaro-Winkler
/// inner measure. Empty-token cases: both empty → 1, one empty → 0.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = words(a);
    let tb = words(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let sum: f64 = ta
        .iter()
        .map(|x| {
            tb.iter()
                .map(|y| jaro_winkler(x, y))
                .fold(0.0_f64, f64::max)
        })
        .sum();
    sum / ta.len() as f64
}

/// Symmetric Monge-Elkan: the mean of both directions.
pub fn monge_elkan_sym(a: &str, b: &str) -> f64 {
    (monge_elkan(a, b) + monge_elkan(b, a)) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_one() {
        assert!((monge_elkan_sym("joe smith", "joe smith") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn token_reorder_is_immaterial() {
        assert!((monge_elkan_sym("smith joe", "joe smith") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tolerates_per_token_corruption() {
        let s = monge_elkan_sym("joseph smith", "joe smyth");
        assert!(s > 0.75, "{s}");
    }

    #[test]
    fn asymmetry_of_directed_measure() {
        // Every token of the short string matches well into the long one,
        // but not vice versa.
        let fwd = monge_elkan("kingston", "kingston hyperx 4gb");
        let bwd = monge_elkan("kingston hyperx 4gb", "kingston");
        assert!(fwd > bwd);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(monge_elkan("", ""), 1.0);
        assert_eq!(monge_elkan("", "a"), 0.0);
        assert_eq!(monge_elkan("a", ""), 0.0);
    }

    #[test]
    fn bounded() {
        let s = monge_elkan_sym("abc def", "xyz qrs");
        assert!((0.0..=1.0).contains(&s));
    }
}
