//! Smith-Waterman local alignment similarity.
//!
//! Finds the best-scoring *local* alignment between two strings (match
//! +2, mismatch −1, gap −1) and normalizes by the best possible score of
//! the shorter string. Strong at spotting a shared core inside otherwise
//! different strings ("KHX1600C9D3K3" inside a long product title), which
//! the global measures dilute.

/// Smith-Waterman local alignment score with unit costs
/// (match = +2, mismatch = −1, gap = −1), over Unicode scalar values of
/// the lower-cased inputs.
pub fn smith_waterman_score(a: &str, b: &str) -> i64 {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    score_chars(&a, &b)
}

/// The DP over already-lowercased char sequences. Shared with the
/// normalized similarity so both score and normalization lengths are
/// computed over the same sequences.
fn score_chars(a: &[char], b: &[char]) -> i64 {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    const MATCH: i64 = 2;
    const MISMATCH: i64 = -1;
    const GAP: i64 = -1;
    let mut prev = vec![0i64; b.len() + 1];
    let mut cur = vec![0i64; b.len() + 1];
    let mut best = 0i64;
    for &ca in a {
        for (j, &cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { MATCH } else { MISMATCH };
            let up = prev[j + 1] + GAP;
            let left = cur[j] + GAP;
            cur[j + 1] = diag.max(up).max(left).max(0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    best
}

/// Normalized Smith-Waterman similarity in `[0, 1]`: the local alignment
/// score divided by the maximum achievable (`2 × min(|a|, |b|)`).
/// Both empty → 1; exactly one empty → 0.
///
/// The normalization lengths are the **lower-cased** scalar counts — the
/// same sequences the score is computed over. `str::to_lowercase` can
/// change the scalar count ('İ' → `"i\u{307}"`), and normalizing by the
/// raw counts used to produce ratios over 1 that the clamp silently
/// masked (and under-normalized ratios it did not).
pub fn smith_waterman_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let max_score = 2 * a.len().min(b.len()) as i64;
    (score_chars(&a, &b) as f64 / max_score as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_perfect() {
        assert_eq!(smith_waterman_similarity("kingston", "kingston"), 1.0);
        assert_eq!(smith_waterman_score("abc", "abc"), 6);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(smith_waterman_similarity("ABC", "abc"), 1.0);
    }

    #[test]
    fn disjoint_strings_score_zero_ish() {
        let s = smith_waterman_similarity("aaaa", "bbbb");
        assert!(s < 0.3, "{s}");
    }

    #[test]
    fn finds_embedded_substring() {
        // The model number buried in a long title still aligns perfectly.
        let s = smith_waterman_similarity(
            "KHX1600C9D3K3",
            "Kingston HyperX KHX1600C9D3K3 12GB memory kit",
        );
        assert_eq!(s, 1.0);
    }

    #[test]
    fn tolerates_gaps() {
        let s = smith_waterman_similarity("kingston", "king-ston");
        assert!(s > 0.8, "{s}");
    }

    #[test]
    fn empty_cases() {
        assert_eq!(smith_waterman_similarity("", ""), 1.0);
        assert_eq!(smith_waterman_similarity("", "x"), 0.0);
        assert_eq!(smith_waterman_score("", "abc"), 0);
    }

    #[test]
    fn length_changing_lowercase_normalizes_over_scored_chars() {
        // 'İ' lowercases to two scalars ("i\u{307}"), so the raw char
        // count (3) undercounts the scored sequence ("i\u{307}ab", 4).
        // The best local alignment against "i\u{307}xy" matches the two
        // leading scalars (+4) out of a 2·min(4,4) = 8 maximum: 0.5.
        // Normalizing by raw counts gave 4/6 ≈ 0.667.
        let s = smith_waterman_similarity("İab", "i\u{307}xy");
        assert_eq!(s, 0.5);
        // And a perfect match stays exactly 1.0 rather than a clamped >1.
        let t = smith_waterman_similarity("İİ", "i\u{307}i\u{307}");
        assert_eq!(t, 1.0);
        assert_eq!(smith_waterman_score("İİ", "i\u{307}i\u{307}"), 8);
    }

    #[test]
    fn symmetric() {
        let a = "golden dragon";
        let b = "dragon palace";
        assert_eq!(smith_waterman_score(a, b), smith_waterman_score(b, a));
    }

    #[test]
    fn score_never_negative() {
        assert!(smith_waterman_score("xyz", "abc") >= 0);
    }
}
