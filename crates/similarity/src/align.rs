//! Smith-Waterman local alignment similarity.
//!
//! Finds the best-scoring *local* alignment between two strings (match
//! +2, mismatch −1, gap −1) and normalizes by the best possible score of
//! the shorter string. Strong at spotting a shared core inside otherwise
//! different strings ("KHX1600C9D3K3" inside a long product title), which
//! the global measures dilute.

/// Smith-Waterman local alignment score with unit costs
/// (match = +2, mismatch = −1, gap = −1), over Unicode scalar values of
/// the lower-cased inputs.
pub fn smith_waterman_score(a: &str, b: &str) -> i64 {
    let a: Vec<char> = a.to_lowercase().chars().collect();
    let b: Vec<char> = b.to_lowercase().chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    const MATCH: i64 = 2;
    const MISMATCH: i64 = -1;
    const GAP: i64 = -1;
    let mut prev = vec![0i64; b.len() + 1];
    let mut cur = vec![0i64; b.len() + 1];
    let mut best = 0i64;
    for &ca in &a {
        for (j, &cb) in b.iter().enumerate() {
            let diag = prev[j] + if ca == cb { MATCH } else { MISMATCH };
            let up = prev[j + 1] + GAP;
            let left = cur[j] + GAP;
            cur[j + 1] = diag.max(up).max(left).max(0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
        cur[0] = 0;
    }
    best
}

/// Normalized Smith-Waterman similarity in `[0, 1]`: the local alignment
/// score divided by the maximum achievable (`2 × min(|a|, |b|)`).
/// Both empty → 1; exactly one empty → 0.
pub fn smith_waterman_similarity(a: &str, b: &str) -> f64 {
    let la = a.chars().count();
    let lb = b.chars().count();
    if la == 0 && lb == 0 {
        return 1.0;
    }
    if la == 0 || lb == 0 {
        return 0.0;
    }
    let max_score = 2 * la.min(lb) as i64;
    (smith_waterman_score(a, b) as f64 / max_score as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_perfect() {
        assert_eq!(smith_waterman_similarity("kingston", "kingston"), 1.0);
        assert_eq!(smith_waterman_score("abc", "abc"), 6);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(smith_waterman_similarity("ABC", "abc"), 1.0);
    }

    #[test]
    fn disjoint_strings_score_zero_ish() {
        let s = smith_waterman_similarity("aaaa", "bbbb");
        assert!(s < 0.3, "{s}");
    }

    #[test]
    fn finds_embedded_substring() {
        // The model number buried in a long title still aligns perfectly.
        let s = smith_waterman_similarity(
            "KHX1600C9D3K3",
            "Kingston HyperX KHX1600C9D3K3 12GB memory kit",
        );
        assert_eq!(s, 1.0);
    }

    #[test]
    fn tolerates_gaps() {
        let s = smith_waterman_similarity("kingston", "king-ston");
        assert!(s > 0.8, "{s}");
    }

    #[test]
    fn empty_cases() {
        assert_eq!(smith_waterman_similarity("", ""), 1.0);
        assert_eq!(smith_waterman_similarity("", "x"), 0.0);
        assert_eq!(smith_waterman_score("", "abc"), 0);
    }

    #[test]
    fn symmetric() {
        let a = "golden dragon";
        let b = "dragon palace";
        assert_eq!(smith_waterman_score(a, b), smith_waterman_score(b, a));
    }

    #[test]
    fn score_never_negative() {
        assert!(smith_waterman_score("xyz", "abc") >= 0);
    }
}
