//! Property-based tests for the similarity measures: bounds, symmetry,
//! identity, and metric-style sanity properties that every measure must
//! satisfy regardless of input.

use proptest::prelude::*;
use similarity::{cosine::TfIdfModel, edit, exact, jaccard, jaro, monge_elkan, numeric};

fn any_string() -> impl Strategy<Value = String> {
    // Mix of word-like and arbitrary unicode-ish strings, bounded length.
    prop_oneof![
        "[a-z0-9 ]{0,24}",
        "[A-Za-z0-9 ,.'-]{0,24}",
        any::<String>().prop_map(|s| s.chars().take(16).collect()),
    ]
}

proptest! {
    #[test]
    fn levenshtein_identity(s in any_string()) {
        prop_assert_eq!(edit::levenshtein(&s, &s), 0);
        prop_assert_eq!(edit::levenshtein_similarity(&s, &s), 1.0);
    }

    #[test]
    fn levenshtein_symmetry(a in any_string(), b in any_string()) {
        prop_assert_eq!(edit::levenshtein(&a, &b), edit::levenshtein(&b, &a));
    }

    #[test]
    fn levenshtein_triangle(a in any_string(), b in any_string(), c in any_string()) {
        let ab = edit::levenshtein(&a, &b);
        let bc = edit::levenshtein(&b, &c);
        let ac = edit::levenshtein(&a, &c);
        prop_assert!(ac <= ab + bc);
    }

    #[test]
    fn levenshtein_bounded_by_longer_len(a in any_string(), b in any_string()) {
        let d = edit::levenshtein(&a, &b);
        let max = a.chars().count().max(b.chars().count());
        prop_assert!(d <= max);
        let s = edit::levenshtein_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn jaro_bounds_and_symmetry(a in any_string(), b in any_string()) {
        let j = jaro::jaro(&a, &b);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert!((j - jaro::jaro(&b, &a)).abs() < 1e-12);
        let jw = jaro::jaro_winkler(&a, &b);
        prop_assert!((0.0..=1.0).contains(&jw));
        prop_assert!(jw + 1e-12 >= j, "winkler must not decrease jaro");
    }

    #[test]
    fn jaro_identity(s in any_string()) {
        prop_assert_eq!(jaro::jaro(&s, &s), 1.0);
    }

    #[test]
    fn jaccard_family_bounds(a in any_string(), b in any_string()) {
        for f in [jaccard::jaccard_words, jaccard::dice_words, jaccard::overlap_words] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s), "{s}");
            prop_assert!((s - f(&b, &a)).abs() < 1e-12);
        }
        let q = jaccard::jaccard_qgrams(&a, &b, 3);
        prop_assert!((0.0..=1.0).contains(&q));
    }

    #[test]
    fn jaccard_leq_dice_leq_overlap(a in any_string(), b in any_string()) {
        let j = jaccard::jaccard_words(&a, &b);
        let d = jaccard::dice_words(&a, &b);
        let o = jaccard::overlap_words(&a, &b);
        prop_assert!(j <= d + 1e-12);
        prop_assert!(d <= o + 1e-12);
    }

    #[test]
    fn monge_elkan_bounds(a in any_string(), b in any_string()) {
        let s = monge_elkan::monge_elkan_sym(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        let asym = monge_elkan::monge_elkan(&a, &b);
        prop_assert!((0.0..=1.0).contains(&asym));
    }

    #[test]
    fn monge_elkan_identity(s in "[a-z ]{1,20}") {
        let v = monge_elkan::monge_elkan_sym(&s, &s);
        prop_assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_family_bounds(a in any_string(), b in any_string()) {
        for f in [exact::exact_match, exact::containment, exact::prefix_similarity] {
            let s = f(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn exact_match_identity(s in any_string()) {
        prop_assert_eq!(exact::exact_match(&s, &s), 1.0);
        prop_assert_eq!(exact::containment(&s, &s), 1.0);
    }

    #[test]
    fn numeric_bounds(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        prop_assert!((0.0..=1.0).contains(&numeric::num_rel_sim(a, b)));
        prop_assert!((0.0..=1.0).contains(&numeric::num_abs_sim(a, b, 20.0)));
        prop_assert_eq!(numeric::num_exact(a, a), 1.0);
        prop_assert_eq!(numeric::num_rel_sim(a, a), 1.0);
    }

    #[test]
    fn tfidf_cosine_bounds(docs in prop::collection::vec("[a-z ]{0,20}", 1..8),
                           a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
        let m = TfIdfModel::fit(docs.iter().map(|s| s.as_str()));
        let s = m.cosine(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - m.cosine(&b, &a)).abs() < 1e-12);
        let id = m.cosine(&a, &a);
        prop_assert!((id - 1.0).abs() < 1e-9 || a.split_whitespace().next().is_none());
    }
}

proptest! {
    #[test]
    fn smith_waterman_bounds_and_symmetry(a in "[a-zA-Z0-9 ]{0,20}", b in "[a-zA-Z0-9 ]{0,20}") {
        use similarity::align::{smith_waterman_score, smith_waterman_similarity};
        let s = smith_waterman_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert_eq!(smith_waterman_score(&a, &b), smith_waterman_score(&b, &a));
        prop_assert!(smith_waterman_score(&a, &b) >= 0);
    }

    #[test]
    fn smith_waterman_identity(s in "[a-z0-9]{1,20}") {
        use similarity::align::smith_waterman_similarity;
        prop_assert_eq!(smith_waterman_similarity(&s, &s), 1.0);
    }

    #[test]
    fn soundex_similarity_bounds(a in "[a-zA-Z ]{0,20}", b in "[a-zA-Z ]{0,20}") {
        use similarity::phonetic::soundex_similarity;
        let s = soundex_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - soundex_similarity(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn soundex_codes_are_well_formed(w in "[a-zA-Z]{1,12}") {
        use similarity::phonetic::soundex;
        let code = soundex(&w).expect("alphabetic word must code");
        prop_assert_eq!(code.len(), 4);
        let mut cs = code.chars();
        prop_assert!(cs.next().unwrap().is_ascii_uppercase());
        prop_assert!(cs.all(|c| c.is_ascii_digit()));
    }
}

proptest! {
    #[test]
    fn qgram_count_matches_formula(s in "[a-z]{1,30}", q in 1usize..5) {
        use similarity::tokenize::qgrams;
        // For a single normalized word of length n and padding q-1 on each
        // side, the padded string has n + 2(q-1) chars → n + q - 1 grams.
        let grams = qgrams(&s, q);
        let n = s.chars().count();
        prop_assert_eq!(grams.len(), n + q - 1);
        for g in &grams {
            prop_assert_eq!(g.chars().count(), q);
        }
    }

    #[test]
    fn words_are_normalized(s in any_string()) {
        use similarity::tokenize::words;
        for w in words(&s) {
            prop_assert!(!w.is_empty());
            prop_assert!(w.chars().all(|c| c.is_alphanumeric()));
            prop_assert!(!w.chars().any(|c| c.is_ascii_uppercase()));
        }
    }
}
