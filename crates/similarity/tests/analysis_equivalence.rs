//! Property tests for the precomputed-analysis kernels: for arbitrary
//! (unicode-ish) inputs, every analysis-path feature must equal the
//! string-based reference **exactly** — `f64::to_bits` equality, NaN
//! included — covering empty strings, missing values, and mixed schemas.
//! This is the executable form of the bit-identity contract documented in
//! `similarity::analysis`.

use proptest::collection::vec;
use proptest::prelude::*;
use similarity::{Attribute, FeatureVectorizer, Schema, Table, Value};
use std::sync::Arc;

fn any_text() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-z0-9 ]{0,24}",
        "[A-Za-z0-9 ,.'!#-]{0,24}",
        Just(String::new()),
        Just("   ".to_string()),
        any::<String>().prop_map(|s| s.chars().take(12).collect()),
    ]
}

fn any_text_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any_text().prop_map(Value::Text),
        any_text().prop_map(Value::Text),
        any_text().prop_map(Value::Text),
        Just(Value::Null),
    ]
}

fn any_num_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-1000i32..1000).prop_map(|n| Value::Number(f64::from(n) / 4.0)),
        Just(Value::Null),
    ]
}

fn tables(rows_a: Vec<(Value, Value)>, rows_b: Vec<(Value, Value)>) -> (Table, Table) {
    let schema = Arc::new(Schema::new(vec![
        Attribute::text("t"),
        Attribute::number("n"),
    ]));
    let to_rows = |rows: Vec<(Value, Value)>| -> Vec<Vec<Value>> {
        rows.into_iter().map(|(t, n)| vec![t, n]).collect()
    };
    (
        Table::new("a", schema.clone(), to_rows(rows_a)),
        Table::new("b", schema, to_rows(rows_b)),
    )
}

fn assert_all_pairs_bitwise(a: &Table, b: &Table) -> Result<(), TestCaseError> {
    assert_all_pairs_bitwise_at(a, b, 1)
}

fn assert_all_pairs_bitwise_at(
    a: &Table,
    b: &Table,
    threads: usize,
) -> Result<(), TestCaseError> {
    let vz = FeatureVectorizer::fit(a, b);
    let an = vz.analyze(a, b, exec::Threads::new(threads));
    for ra in &a.records {
        for rb in &b.records {
            let want = vz.vectorize(ra, rb);
            let got = vz.vectorize_pre(ra, rb, &an);
            prop_assert_eq!(got.len(), want.len());
            for (fi, (g, w)) in got.iter().zip(&want).enumerate() {
                prop_assert_eq!(
                    g.to_bits(),
                    w.to_bits(),
                    "feature {} ({}) diverged on pair ({:?}, {:?}): pre={} ref={}",
                    fi,
                    vz.library().defs[fi].name(),
                    ra.value(0),
                    rb.value(0),
                    g,
                    w
                );
                let single = vz.feature_pre(fi, ra, rb, &an);
                prop_assert_eq!(single.to_bits(), w.to_bits(), "single-feature path diverged");
            }
        }
    }
    Ok(())
}

/// Inputs crafted to stress the char-level kernels: combining marks
/// (dotted vs decomposed 'i̇'), length-changing lowercasing ('İ'),
/// Greek final-sigma context sensitivity, and strings long enough to
/// cross the 64- and 128-char Myers word boundaries.
fn char_heavy_text() -> impl Strategy<Value = String> {
    prop_oneof![
        "[a-cA-C]{55,75}",
        "[a-z ]{120,140}",
        "[İIi\u{307}Σσςée\u{301}a]{0,12}",
        "[a-zA-ZΑ-Ωα-ω ]{0,20}",
        Just(String::new()),
        Just("İΣΟΣ ΟΔΟΣ".to_string()),
    ]
}

fn char_heavy_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        char_heavy_text().prop_map(Value::Text),
        char_heavy_text().prop_map(Value::Text),
        char_heavy_text().prop_map(Value::Text),
        Just(Value::Null),
    ]
}

/// Values skewed toward collisions: a tiny alphabet plus a handful of
/// literal strings repeated across rows. This drives the value-dedup
/// path (shared `value_id`s, dedup ranks) and duplicate tokens within
/// one value — the cases where arena segment sharing could go wrong.
fn duplicate_heavy_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        "[ab ]{0,16}".prop_map(Value::Text),
        Just(Value::Text("acme acme acme".into())),
        Just(Value::Text("acme".into())),
        Just(Value::Text(String::new())),
        Just(Value::Null),
        char_heavy_text().prop_map(Value::Text),
    ]
}

proptest! {
    #[test]
    fn analysis_path_is_bit_identical(
        rows_a in vec((any_text_value(), any_num_value()), 1..5),
        rows_b in vec((any_text_value(), any_num_value()), 1..5),
    ) {
        let (a, b) = tables(rows_a, rows_b);
        assert_all_pairs_bitwise(&a, &b)?;
    }

    #[test]
    fn char_kernels_bit_identical_across_threads(
        rows_a in vec((char_heavy_value(), any_num_value()), 1..4),
        rows_b in vec((char_heavy_value(), any_num_value()), 1..4),
    ) {
        let (a, b) = tables(rows_a, rows_b);
        for threads in [1, 2, 8] {
            assert_all_pairs_bitwise_at(&a, &b, threads)?;
        }
    }

    /// The arena build must be deterministic down to slab *offsets*, not
    /// just values: a parallel build with 8 workers must produce byte-for-
    /// byte the same `TableAnalysis` (headers, u32/f64/i16/char/text
    /// slabs) as a serial build, over adversarial unicode, empty,
    /// missing, and duplicate-heavy inputs. Offset identity is what makes
    /// analysis adoption across the service's content-addressed registry
    /// safe regardless of each tenant's thread count.
    #[test]
    fn arena_slabs_identical_across_threads(
        rows_a in vec((duplicate_heavy_value(), any_num_value()), 1..6),
        rows_b in vec((duplicate_heavy_value(), any_num_value()), 1..6),
    ) {
        let (a, b) = tables(rows_a, rows_b);
        let vz = FeatureVectorizer::fit(&a, &b);
        let an1 = vz.analyze(&a, &b, exec::Threads::new(1));
        let an8 = vz.analyze(&a, &b, exec::Threads::new(8));
        prop_assert_eq!(&an1.a, &an8.a);
        prop_assert_eq!(&an1.b, &an8.b);
        prop_assert_eq!(&an1.stats, &an8.stats);
        // And the views read back bit-identically to the string path on
        // both builds.
        assert_all_pairs_bitwise_at(&a, &b, 1)?;
        assert_all_pairs_bitwise_at(&a, &b, 8)?;
    }
}

#[test]
fn edge_cases_are_bit_identical() {
    // Deliberate edges: empty strings, whitespace-only, punctuation-only
    // (normalizes to empty), missing values, single chars, duplicated
    // tokens, and mixed-script text.
    let texts = [
        Value::Text(String::new()),
        Value::Text("   ".into()),
        Value::Text("!!! ---".into()),
        Value::Text("a".into()),
        Value::Text("a a a b".into()),
        Value::Null,
        Value::Text("Kingston HyperX 4GB kit".into()),
        Value::Text("kingston hyperx".into()),
        Value::Text("προϊόν 4gb".into()),
        Value::Text("123 456".into()),
        // Length-changing lowercase and decomposed combining marks.
        Value::Text("İstanbul KIT".into()),
        Value::Text("i\u{307}stanbul kit".into()),
        // Crosses the 64-char Myers word boundary (65 chars, one word of
        // pattern bits plus a carry into the second block).
        Value::Text("a".repeat(65)),
        Value::Text(format!("{}b", "a".repeat(64))),
        // Well past two blocks.
        Value::Text("xy".repeat(70)),
    ];
    let rows: Vec<(Value, Value)> = texts
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let n = if i % 3 == 0 { Value::Null } else { Value::Number(i as f64) };
            (t.clone(), n)
        })
        .collect();
    let (a, b) = tables(rows.clone(), rows);
    assert_all_pairs_bitwise(&a, &b).expect("edge cases must be bit-identical");
}

#[test]
fn multi_thread_analysis_is_bit_identical_to_single() {
    let rows: Vec<(Value, Value)> = (0..40)
        .map(|i| {
            (
                Value::Text(format!("acme widget model {} rev {}", i % 7, i)),
                Value::Number(f64::from(i)),
            )
        })
        .collect();
    let (a, b) = tables(rows.clone(), rows);
    let vz = FeatureVectorizer::fit(&a, &b);
    let an1 = vz.analyze(&a, &b, exec::Threads::new(1));
    let an8 = vz.analyze(&a, &b, exec::Threads::new(8));
    for ra in &a.records {
        for rb in &b.records {
            let v1 = vz.vectorize_pre(ra, rb, &an1);
            let v8 = vz.vectorize_pre(ra, rb, &an8);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&v1), bits(&v8));
        }
    }
}
