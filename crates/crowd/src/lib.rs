#![forbid(unsafe_code)]
//! # crowd — a simulated crowdsourcing platform for hands-off EM
//!
//! Corleone's defining property is that every step of the EM workflow is
//! executed by a paid, noisy crowd (paper §8). This crate supplies that
//! substrate as a faithful simulation of Amazon Mechanical Turk as the
//! paper uses it:
//!
//! * **Workers** ([`worker`]): the *random worker model* of Ipeirotis et
//!   al. that the paper itself uses for its sensitivity analysis (§9.3) and
//!   parameter tuning (§9.4) — each worker answers a yes/no match question
//!   correctly except with a per-worker error probability.
//! * **Voting schemes** ([`voting`]): the `2+1` majority vote, the *strong
//!   majority* vote (gap ≥ 3 or 7 answers), and the paper's asymmetric
//!   hybrid that escalates to strong majority only when the running
//!   majority is positive, because false positives corrupt recall
//!   estimates far more than false negatives do (§8.2).
//! * **HITs** ([`hit`]): questions are packed 10 to a HIT, priced per
//!   question, and rendered as the side-by-side record comparison of
//!   paper Fig. 4.
//! * **Label cache** ([`cache`]): labels are reused across Corleone's many
//!   crowd touchpoints, with the §8.3 re-packing rules for partially
//!   cached batches.
//! * **Platform** ([`platform`]): ties the above together behind the one
//!   call Corleone makes — "label this batch of pairs under this scheme" —
//!   and keeps the money/label ledger the experiment tables report.
//! * **Faults** ([`fault`]): seeded injection of real-marketplace failure
//!   modes — HIT expiry, assignment abandonment, worker no-shows and
//!   attrition, transient outages — plus the retry policy (backoff,
//!   price escalation) the platform uses to recover from them.
//! * **Statistics** ([`stats`]): normal quantiles (Acklam's inverse CDF —
//!   no stats crate is available offline) and the finite-population
//!   confidence intervals of §4.2 and §6.1.

//! ```
//! use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, PairKey, Scheme, WorkerPool};
//!
//! let oracle = GoldOracle::from_pairs([(0, 0), (1, 1)]);
//! let workers = WorkerPool::uniform(10, 0.1); // 10 workers, 10% error
//! let mut platform = CrowdPlatform::new(workers, CrowdConfig::default());
//!
//! let batch: Vec<PairKey> = (0..10).map(|i| PairKey::new(i, i)).collect();
//! let labels = platform.label_batch(&oracle, &batch, Scheme::Hybrid);
//! assert_eq!(labels.len(), 10);
//! assert!(platform.ledger().total_cents > 0.0);
//! ```

pub mod aggregate;
pub mod cache;
pub mod fault;
pub mod hit;
pub mod oracle;
pub mod platform;
pub mod quality;
pub mod stats;
pub mod voting;
pub mod worker;

pub use aggregate::{dawid_skene, EmAggregate};
pub use cache::{LabelCache, Strength};
pub use fault::{CrowdError, FaultConfig, FaultStats, RetryPolicy};
pub use oracle::{GoldOracle, PairKey, TruthOracle};
pub use platform::{CrowdConfig, CrowdPlatform, Ledger, PlatformState};
pub use quality::{screen_workers, Qualification, ScreeningReport};
pub use voting::Scheme;
pub use worker::WorkerPool;
