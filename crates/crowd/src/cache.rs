//! Label cache for cross-step reuse (paper §8.3).
//!
//! Corleone asks the crowd for labels in four places (blocking, matching,
//! estimation, locating). Labels are cached and reused — but only when the
//! cached label was obtained "the way we want": a `2+1` label cannot stand
//! in for a request that needs strong-majority quality.

use crate::oracle::PairKey;
use crate::voting::Scheme;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Evidence strength of a cached label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strength {
    /// Obtained via the `2+1` vote.
    Weak,
    /// Met the strong-majority standard.
    Strong,
}

/// A cached crowd label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedLabel {
    /// The combined label.
    pub label: bool,
    /// Evidence strength.
    pub strength: Strength,
}

/// Cache of all labels the crowd has produced so far.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelCache {
    entries: HashMap<PairKey, CachedLabel>,
}

impl LabelCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a label that satisfies the given request scheme, if any.
    ///
    /// Satisfaction rules:
    /// * `TwoPlusOne` requests accept any cached label.
    /// * `StrongMajority` requests accept only strong labels.
    /// * `Hybrid` requests accept strong labels, and weak *negative*
    ///   labels — under the hybrid scheme a negative would only ever be
    ///   verified to `2+1` strength anyway.
    pub fn lookup(&self, pair: PairKey, scheme: Scheme) -> Option<CachedLabel> {
        let entry = *self.entries.get(&pair)?;
        let ok = match scheme {
            Scheme::TwoPlusOne => true,
            Scheme::StrongMajority => entry.strength == Strength::Strong,
            Scheme::Hybrid => entry.strength == Strength::Strong || !entry.label,
        };
        ok.then_some(entry)
    }

    /// Insert or upgrade a label. A weak entry never overwrites a strong
    /// one; a strong entry always wins.
    pub fn insert(&mut self, pair: PairKey, label: bool, strength: Strength) {
        match self.entries.get_mut(&pair) {
            Some(existing) => {
                if existing.strength == Strength::Weak {
                    *existing = CachedLabel { label, strength };
                }
            }
            None => {
                self.entries.insert(pair, CachedLabel { label, strength });
            }
        }
    }

    /// Number of cached labels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over all cached `(pair, label)` entries in ascending pair
    /// order, so callers can never observe hash-map iteration order.
    pub fn iter(&self) -> impl Iterator<Item = (&PairKey, &CachedLabel)> {
        let mut v: Vec<(&PairKey, &CachedLabel)> = self.entries.iter().collect(); // lint:allow(D2): sorted immediately below; hash order never escapes this method
        v.sort_unstable_by_key(|&(p, _)| *p);
        v.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(a: u32, b: u32) -> PairKey {
        PairKey::new(a, b)
    }

    #[test]
    fn weak_label_serves_weak_requests_only() {
        let mut c = LabelCache::new();
        c.insert(k(1, 1), true, Strength::Weak);
        assert!(c.lookup(k(1, 1), Scheme::TwoPlusOne).is_some());
        assert!(c.lookup(k(1, 1), Scheme::StrongMajority).is_none());
        assert!(c.lookup(k(1, 1), Scheme::Hybrid).is_none());
    }

    #[test]
    fn weak_negative_serves_hybrid() {
        let mut c = LabelCache::new();
        c.insert(k(1, 2), false, Strength::Weak);
        assert!(c.lookup(k(1, 2), Scheme::Hybrid).is_some());
        assert!(c.lookup(k(1, 2), Scheme::StrongMajority).is_none());
    }

    #[test]
    fn strong_label_serves_everything() {
        let mut c = LabelCache::new();
        c.insert(k(2, 2), true, Strength::Strong);
        for s in [Scheme::TwoPlusOne, Scheme::StrongMajority, Scheme::Hybrid] {
            assert!(c.lookup(k(2, 2), s).unwrap().label);
        }
    }

    #[test]
    fn strong_never_downgraded() {
        let mut c = LabelCache::new();
        c.insert(k(3, 3), true, Strength::Strong);
        c.insert(k(3, 3), false, Strength::Weak);
        let e = c.lookup(k(3, 3), Scheme::StrongMajority).unwrap();
        assert!(e.label, "strong entry must survive a weak re-insert");
    }

    #[test]
    fn weak_upgraded_by_strong() {
        let mut c = LabelCache::new();
        c.insert(k(4, 4), true, Strength::Weak);
        c.insert(k(4, 4), false, Strength::Strong);
        let e = c.lookup(k(4, 4), Scheme::StrongMajority).unwrap();
        assert!(!e.label);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn miss_on_unknown_pair() {
        let c = LabelCache::new();
        assert!(c.lookup(k(9, 9), Scheme::TwoPlusOne).is_none());
        assert!(c.is_empty());
    }
}
