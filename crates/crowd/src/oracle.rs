//! Ground truth plumbing: how the simulated crowd knows the true answer.
//!
//! Real turkers look at two records and decide. The simulation short-cuts
//! that by consulting a [`TruthOracle`] for the true label of a pair, then
//! letting the worker model corrupt it. Corleone itself never sees the
//! oracle — it only sees crowd answers, exactly like the real system.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A pair of record ids `(a_id, b_id)` — the unit the crowd labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PairKey {
    /// Record id in table A.
    pub a: u32,
    /// Record id in table B.
    pub b: u32,
}

impl PairKey {
    /// Construct a pair key.
    pub fn new(a: u32, b: u32) -> Self {
        PairKey { a, b }
    }
}

impl serde::MapKey for PairKey {
    fn to_key_string(&self) -> String {
        format!("{}:{}", self.a, self.b)
    }

    fn from_key_string(s: &str) -> Result<Self, serde::Error> {
        let bad = || serde::Error::msg(format!("invalid PairKey map key `{s}`"));
        let (a, b) = s.split_once(':').ok_or_else(bad)?;
        Ok(PairKey {
            a: a.parse().map_err(|_| bad())?,
            b: b.parse().map_err(|_| bad())?,
        })
    }
}

/// Source of true match labels, consulted only by the simulated workers.
pub trait TruthOracle {
    /// True label of the pair: `true` = the records match.
    fn true_label(&self, pair: PairKey) -> bool;
}

/// Oracle backed by an explicit gold set of matching pairs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GoldOracle {
    matches: HashSet<PairKey>,
}

impl GoldOracle {
    /// Build from the set of matching pairs.
    pub fn new(matches: HashSet<PairKey>) -> Self {
        GoldOracle { matches }
    }

    /// Build from an iterator of `(a, b)` id pairs.
    pub fn from_pairs<I: IntoIterator<Item = (u32, u32)>>(pairs: I) -> Self {
        GoldOracle {
            matches: pairs.into_iter().map(|(a, b)| PairKey::new(a, b)).collect(),
        }
    }

    /// Number of gold matches.
    pub fn n_matches(&self) -> usize {
        self.matches.len()
    }

    /// The gold match set.
    pub fn matches(&self) -> &HashSet<PairKey> {
        &self.matches
    }
}

impl TruthOracle for GoldOracle {
    fn true_label(&self, pair: PairKey) -> bool {
        self.matches.contains(&pair)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gold_oracle_answers() {
        let o = GoldOracle::from_pairs([(1, 2), (3, 4)]);
        assert!(o.true_label(PairKey::new(1, 2)));
        assert!(!o.true_label(PairKey::new(2, 1)));
        assert!(!o.true_label(PairKey::new(9, 9)));
        assert_eq!(o.n_matches(), 2);
    }

    #[test]
    fn pair_key_ordering_and_hash() {
        let mut v = [PairKey::new(2, 1), PairKey::new(1, 2), PairKey::new(1, 1)];
        v.sort();
        assert_eq!(v[0], PairKey::new(1, 1));
        assert_eq!(v[2], PairKey::new(2, 1));
    }
}
