//! Worker qualification — the paper's spam defense (§9: "we used common
//! turker qualifications to avoid spammers, such as allowing only turkers
//! with at least 100 approved HITs and 95% approval rate").
//!
//! The simulation models qualification as a screening test built from
//! *golden questions* (pairs with known answers, per Le et al. 2010, the
//! paper's [17]): each candidate worker answers `n` golden questions and
//! joins the pool only with at least `min_correct` right. Workers with
//! high latent error rates are disproportionately rejected, shifting the
//! admitted pool's mean error down — exactly what AMT approval-rate
//! filters accomplish.

use crate::worker::WorkerPool;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A qualification screen.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Qualification {
    /// Golden questions each candidate answers.
    pub n_questions: u32,
    /// Minimum correct answers to be admitted.
    pub min_correct: u32,
}

impl Default for Qualification {
    fn default() -> Self {
        // 10 golden questions, 9 required ≈ AMT's "95% approval" bar.
        Qualification { n_questions: 10, min_correct: 9 }
    }
}

/// Outcome of screening a candidate population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScreeningReport {
    /// Candidates tested.
    pub candidates: usize,
    /// Candidates admitted.
    pub admitted: usize,
    /// Mean latent error rate of the candidates.
    pub candidate_mean_error: f64,
    /// Mean latent error rate of the admitted pool.
    pub admitted_mean_error: f64,
    /// Golden-question answers paid for (each costs one question price).
    pub answers_paid: u64,
}

/// Screen candidate workers (given by latent error rate) through the
/// qualification and build the admitted pool.
///
/// Returns `None` for the pool when nobody passes (callers should then
/// relax the screen or re-recruit).
pub fn screen_workers<R: Rng>(
    candidate_error_rates: &[f64],
    qual: Qualification,
    rng: &mut R,
) -> (Option<WorkerPool>, ScreeningReport) {
    assert!(
        qual.min_correct <= qual.n_questions,
        "cannot require more correct answers than questions"
    );
    let mut admitted: Vec<f64> = Vec::new();
    let mut answers_paid = 0u64;
    for &err in candidate_error_rates {
        let mut correct = 0u32;
        for _ in 0..qual.n_questions {
            answers_paid += 1;
            if !rng.gen_bool(err.clamp(0.0, 1.0)) {
                correct += 1;
            }
        }
        if correct >= qual.min_correct {
            admitted.push(err);
        }
    }
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let report = ScreeningReport {
        candidates: candidate_error_rates.len(),
        admitted: admitted.len(),
        candidate_mean_error: mean(candidate_error_rates),
        admitted_mean_error: mean(&admitted),
        answers_paid,
    };
    let pool = if admitted.is_empty() {
        None
    } else {
        Some(WorkerPool::from_error_rates(admitted))
    };
    (pool, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mixed population: half diligent (3% error), half spammers (40%).
    fn mixed(n: usize) -> Vec<f64> {
        (0..n).map(|i| if i % 2 == 0 { 0.03 } else { 0.40 }).collect()
    }

    #[test]
    fn screening_rejects_spammers() {
        let mut rng = StdRng::seed_from_u64(1);
        let (pool, report) = screen_workers(&mixed(200), Qualification::default(), &mut rng);
        let pool = pool.expect("diligent workers must pass");
        assert!(report.admitted < report.candidates);
        assert!(
            report.admitted_mean_error < 0.10,
            "admitted pool mean error {}",
            report.admitted_mean_error
        );
        assert!(report.admitted_mean_error < report.candidate_mean_error);
        assert_eq!(pool.len(), report.admitted);
        assert_eq!(report.answers_paid, 200 * 10);
    }

    #[test]
    fn lax_screen_admits_everyone() {
        let mut rng = StdRng::seed_from_u64(2);
        let qual = Qualification { n_questions: 5, min_correct: 0 };
        let (pool, report) = screen_workers(&mixed(50), qual, &mut rng);
        assert_eq!(report.admitted, 50);
        assert_eq!(pool.unwrap().len(), 50);
    }

    #[test]
    fn impossible_screen_admits_nobody() {
        // 40%-error candidates virtually never get 20/20.
        let mut rng = StdRng::seed_from_u64(3);
        let candidates = vec![0.4; 30];
        let qual = Qualification { n_questions: 20, min_correct: 20 };
        let (pool, report) = screen_workers(&candidates, qual, &mut rng);
        assert!(report.admitted <= 1);
        if report.admitted == 0 {
            assert!(pool.is_none());
        }
    }

    #[test]
    #[should_panic(expected = "more correct answers")]
    fn invalid_screen_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        screen_workers(&[0.1], Qualification { n_questions: 2, min_correct: 3 }, &mut rng);
    }
}
