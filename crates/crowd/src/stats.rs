//! Statistics used by rule evaluation (§4.2) and accuracy estimation
//! (§6.1): standard-normal quantiles and finite-population proportion
//! confidence intervals.

/// Inverse CDF (quantile function) of the standard normal distribution,
/// computed with Peter Acklam's rational approximation (relative error
/// below 1.15e-9 over the full domain). Implemented here because no
/// statistics crate is available in the offline dependency set.
///
/// # Panics
/// Panics if `p` is not strictly inside `(0, 1)`.
#[allow(clippy::excessive_precision)] // Acklam's published coefficients, verbatim
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "p must be in (0, 1), got {p}");

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// `Z_{1-δ/2}` for a two-sided interval at confidence `delta`
/// (e.g. `0.95 → 1.959964…`). The paper writes the confidence level as δ.
pub fn z_for_confidence(delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "confidence must be in (0, 1)");
    inverse_normal_cdf(1.0 - (1.0 - delta) / 2.0)
}

/// Finite-population error margin of an estimated proportion (paper §4.2):
///
/// `ε = Z · sqrt( (P(1−P)/n) · ((m−n)/(m−1)) )`
///
/// where `n` is the sample size and `m` the population size. Returns 0 when
/// the sample has exhausted the population or the population is trivial.
pub fn fpc_margin(p: f64, n: usize, m: usize, z: f64) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    if m <= 1 || n >= m {
        return 0.0;
    }
    let fpc = (m - n) as f64 / (m - 1) as f64;
    z * ((p * (1.0 - p) / n as f64) * fpc).sqrt()
}

/// Smallest sample size `n` such that the finite-population margin at
/// proportion `p` over a population of `m` drops to `eps` or below.
/// Derived by solving the [`fpc_margin`] equation for `n`:
///
/// `n = m·z²·p(1−p) / (ε²·(m−1) + z²·p(1−p))`
///
/// With `p` unknown a priori, pass `p = 0.5` for the worst case.
pub fn required_sample_size(p: f64, m: usize, z: f64, eps: f64) -> usize {
    assert!(eps > 0.0, "target margin must be positive");
    if m <= 1 {
        return m;
    }
    let v = z * z * p * (1.0 - p);
    if v == 0.0 {
        return 1;
    }
    let n = (m as f64 * v) / (eps * eps * (m as f64 - 1.0) + v);
    (n.ceil() as usize).min(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_tables() {
        // Standard normal quantiles to 4+ decimal places.
        assert!((inverse_normal_cdf(0.5) - 0.0).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.95996).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.995) - 2.57583).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.841344746) - 1.0).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.025) + 1.95996).abs() < 1e-4);
    }

    #[test]
    fn quantile_symmetry() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            let lo = inverse_normal_cdf(p);
            let hi = inverse_normal_cdf(1.0 - p);
            assert!((lo + hi).abs() < 1e-7, "asymmetry at {p}");
        }
    }

    #[test]
    fn tail_accuracy() {
        assert!((inverse_normal_cdf(1e-6) + 4.75342).abs() < 1e-3);
        assert!((inverse_normal_cdf(1.0 - 1e-6) - 4.75342).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "p must be in (0, 1)")]
    fn quantile_rejects_zero() {
        inverse_normal_cdf(0.0);
    }

    #[test]
    fn z_for_95_confidence() {
        assert!((z_for_confidence(0.95) - 1.95996).abs() < 1e-4);
        assert!((z_for_confidence(0.99) - 2.57583).abs() < 1e-4);
    }

    #[test]
    fn fpc_margin_behaviour() {
        let z = z_for_confidence(0.95);
        // Infinite population limit ~ classic margin.
        let m_inf = fpc_margin(0.5, 100, 1_000_000, z);
        assert!((m_inf - z * 0.05).abs() < 1e-3);
        // Exhausted population → 0.
        assert_eq!(fpc_margin(0.5, 100, 100, z), 0.0);
        // Empty sample → infinite.
        assert!(fpc_margin(0.5, 0, 100, z).is_infinite());
        // FPC shrinks the margin.
        assert!(fpc_margin(0.5, 100, 200, z) < m_inf);
    }

    #[test]
    fn required_sample_size_inverts_margin() {
        let z = z_for_confidence(0.95);
        for &(p, m, eps) in &[(0.5, 10_000usize, 0.05), (0.8, 50_000, 0.025), (0.95, 500, 0.05)] {
            let n = required_sample_size(p, m, z, eps);
            assert!(fpc_margin(p, n, m, z) <= eps + 1e-12, "n={n}");
            if n > 1 {
                assert!(
                    fpc_margin(p, n - 1, m, z) > eps - 1e-9,
                    "n−1 should not already satisfy the margin (n={n})"
                );
            }
        }
    }

    #[test]
    fn paper_example_recall_sample_size() {
        // Paper §6.1: for R* = 0.8 and ε_r = 0.025, n_ap ≥ 984 regardless
        // of population size (the infinite-population bound).
        let z = z_for_confidence(0.95);
        let n = required_sample_size(0.8, 100_000_000, z, 0.025);
        assert!((980..=990).contains(&n), "n = {n}");
    }

    #[test]
    fn degenerate_proportions() {
        let z = z_for_confidence(0.95);
        assert_eq!(required_sample_size(0.0, 1000, z, 0.05), 1);
        assert_eq!(required_sample_size(1.0, 1000, z, 0.05), 1);
        assert_eq!(fpc_margin(0.0, 10, 1000, z), 0.0);
    }
}
