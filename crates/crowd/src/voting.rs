//! Answer-combination schemes (paper §8.2).
//!
//! The paper starts from the industry-standard `2+1` majority vote, finds
//! it too weak for accuracy estimation, moves to a *strong majority* vote
//! (solicit until the majority leads by ≥ 3, cap at 7 answers), and finally
//! settles on an asymmetric **hybrid**: escalate to strong majority only
//! when the running majority is *positive*, because a false positive
//! perturbs `n_ap` — a denominator of the recall estimate — while a false
//! negative is comparatively harmless.

use crate::worker::WorkerPool;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How crowd answers for one question are combined into a label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Solicit 2 answers; if they agree return the label, else solicit one
    /// more and take the majority.
    TwoPlusOne,
    /// Solicit answers until the majority label leads the minority by at
    /// least 3, or 7 answers have been solicited; return the majority.
    StrongMajority,
    /// Run `2+1`; if the resulting majority is positive, continue
    /// soliciting to the strong-majority standard (reusing the answers
    /// already gathered). Negative results stay at `2+1` strength.
    Hybrid,
}

/// Outcome of resolving one question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteOutcome {
    /// The combined label.
    pub label: bool,
    /// Number of answers solicited (each costs one question-price).
    pub answers: u32,
    /// Whether the label met the strong-majority standard (lead ≥ 3, or
    /// the 7-answer cap was reached).
    pub strong: bool,
}

/// Resolve one question under the given scheme against the worker pool.
///
/// `true_label` is what a perfect worker would answer; the pool corrupts it
/// per the random worker model.
pub fn resolve<R: Rng>(
    scheme: Scheme,
    pool: &WorkerPool,
    true_label: bool,
    rng: &mut R,
) -> VoteOutcome {
    let mut yes = 0u32;
    let mut no = 0u32;
    let ask = |yes: &mut u32, no: &mut u32, rng: &mut R| {
        if pool.answer(true_label, rng) {
            *yes += 1;
        } else {
            *no += 1;
        }
    };

    // Phase 1: the 2+1 vote.
    ask(&mut yes, &mut no, rng);
    ask(&mut yes, &mut no, rng);
    if yes == 1 && no == 1 {
        ask(&mut yes, &mut no, rng);
    }
    let majority = yes > no;

    let escalate = match scheme {
        Scheme::TwoPlusOne => false,
        Scheme::StrongMajority => true,
        Scheme::Hybrid => majority,
    };
    if !escalate {
        return VoteOutcome { label: majority, answers: yes + no, strong: false };
    }

    // Phase 2: continue until the strong-majority condition holds.
    loop {
        let gap = yes.abs_diff(no);
        let total = yes + no;
        if gap >= 3 || total >= 7 {
            return VoteOutcome { label: yes > no, answers: total, strong: true };
        }
        ask(&mut yes, &mut no, rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_crowd_two_plus_one_uses_two_answers() {
        let pool = WorkerPool::perfect(3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = resolve(Scheme::TwoPlusOne, &pool, true, &mut rng);
        assert!(out.label);
        assert_eq!(out.answers, 2);
        assert!(!out.strong);
    }

    #[test]
    fn perfect_crowd_strong_majority_uses_three_answers() {
        let pool = WorkerPool::perfect(3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = resolve(Scheme::StrongMajority, &pool, false, &mut rng);
        assert!(!out.label);
        assert_eq!(out.answers, 3, "3-0 is the first gap ≥ 3");
        assert!(out.strong);
    }

    #[test]
    fn hybrid_stays_weak_on_negative() {
        let pool = WorkerPool::perfect(3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = resolve(Scheme::Hybrid, &pool, false, &mut rng);
        assert!(!out.label);
        assert_eq!(out.answers, 2);
        assert!(!out.strong);
    }

    #[test]
    fn hybrid_escalates_on_positive() {
        let pool = WorkerPool::perfect(3);
        let mut rng = StdRng::seed_from_u64(1);
        let out = resolve(Scheme::Hybrid, &pool, true, &mut rng);
        assert!(out.label);
        assert!(out.strong);
        assert_eq!(out.answers, 3);
    }

    #[test]
    fn strong_majority_caps_at_seven() {
        let pool = WorkerPool::uniform(10, 0.45);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let out = resolve(Scheme::StrongMajority, &pool, true, &mut rng);
            assert!(out.answers <= 7);
            assert!(out.strong);
        }
    }

    #[test]
    fn noisy_crowd_majority_is_usually_right() {
        let pool = WorkerPool::uniform(10, 0.2);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 2000;
        let correct = (0..n)
            .filter(|_| resolve(Scheme::StrongMajority, &pool, true, &mut rng).label)
            .count() as f64;
        // Strong majority with 20% worker error should exceed 93% accuracy.
        assert!(correct / n as f64 > 0.93, "{}", correct / n as f64);
    }

    #[test]
    fn strong_majority_beats_two_plus_one_under_noise() {
        let pool = WorkerPool::uniform(10, 0.25);
        let n = 4000;
        let acc = |scheme: Scheme| {
            let mut rng = StdRng::seed_from_u64(13);
            (0..n)
                .filter(|_| resolve(scheme, &pool, true, &mut rng).label)
                .count() as f64
                / n as f64
        };
        assert!(acc(Scheme::StrongMajority) > acc(Scheme::TwoPlusOne));
    }

    #[test]
    fn answer_counts_bound() {
        let pool = WorkerPool::uniform(5, 0.3);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let o1 = resolve(Scheme::TwoPlusOne, &pool, true, &mut rng);
            assert!(o1.answers == 2 || o1.answers == 3);
            let o2 = resolve(Scheme::Hybrid, &pool, false, &mut rng);
            assert!(o2.answers <= 7);
        }
    }
}
