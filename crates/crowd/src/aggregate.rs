//! Expectation-maximization answer aggregation — the alternative to
//! majority voting the paper discusses and sets aside (§8.2: "Several
//! solutions have been proposed for combining noisy answers, such as
//! golden questions [17] and expectation maximization [13]. They often
//! require a large number of answers to work well, and it is not yet
//! clear when they outperform simple solutions, e.g., majority voting").
//!
//! This module implements a binary Dawid–Skene-style EM estimator so that
//! claim can be tested empirically (see the `voting_em` test and the
//! `ablation_voting` binary): it jointly infers per-worker error rates and
//! per-question labels from worker-tagged answers.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One worker answer: `(question index, worker id, answer)`.
pub type TaggedAnswer = (usize, usize, bool);

/// Result of EM aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmAggregate {
    /// Posterior probability that each question's true label is positive.
    pub posterior_pos: Vec<f64>,
    /// Inferred per-worker error rate.
    pub worker_error: HashMap<usize, f64>,
    /// EM iterations executed.
    pub iterations: usize,
}

impl EmAggregate {
    /// Hard labels at the 0.5 threshold.
    pub fn labels(&self) -> Vec<bool> {
        self.posterior_pos.iter().map(|&p| p >= 0.5).collect()
    }
}

/// Run binary Dawid–Skene EM over worker-tagged answers.
///
/// * `n_questions` — questions are indexed `0..n_questions`.
/// * `prior_pos` — prior probability of a positive label (use the
///   universe's skew, e.g. 0.1; 0.5 = uninformative).
/// * Workers are modeled with a single symmetric error rate (the random
///   worker model), clamped to `[0.01, 0.49]` so no worker is treated as
///   perfect or adversarial.
///
/// Questions with no answers get the prior. Convergence: max posterior
/// change below `1e-6` or 100 iterations.
pub fn dawid_skene(
    n_questions: usize,
    answers: &[TaggedAnswer],
    prior_pos: f64,
) -> EmAggregate {
    assert!((0.0..=1.0).contains(&prior_pos), "prior must be a probability");
    // Initialize posteriors with per-question vote fractions.
    let mut pos_votes = vec![0.0f64; n_questions];
    let mut tot_votes = vec![0.0f64; n_questions];
    for &(q, _, a) in answers {
        assert!(q < n_questions, "question index out of range");
        tot_votes[q] += 1.0;
        if a {
            pos_votes[q] += 1.0;
        }
    }
    let mut posterior: Vec<f64> = (0..n_questions)
        .map(|q| {
            if tot_votes[q] > 0.0 {
                (pos_votes[q] / tot_votes[q]).clamp(0.05, 0.95)
            } else {
                prior_pos
            }
        })
        .collect();

    let mut worker_error: HashMap<usize, f64> = HashMap::new();
    let mut iterations = 0;
    for _ in 0..100 {
        iterations += 1;
        // M-step: per-worker error rate = expected fraction of answers
        // disagreeing with the current posterior (Laplace-smoothed).
        let mut wrong: HashMap<usize, f64> = HashMap::new();
        let mut total: HashMap<usize, f64> = HashMap::new();
        for &(q, w, a) in answers {
            let p = posterior[q];
            let p_wrong = if a { 1.0 - p } else { p };
            *wrong.entry(w).or_insert(0.0) += p_wrong;
            *total.entry(w).or_insert(0.0) += 1.0;
        }
        worker_error = total
            .iter() // lint:allow(D2): independent per-key transform into another map; no cross-key float accumulation, no serialization
            .map(|(&w, &n)| {
                let e = (wrong[&w] + 1.0) / (n + 2.0);
                (w, e.clamp(0.01, 0.49))
            })
            .collect();

        // E-step: posteriors from worker reliabilities.
        let mut log_odds: Vec<f64> =
            vec![(prior_pos / (1.0 - prior_pos)).ln(); n_questions];
        for &(q, w, a) in answers {
            let e = worker_error[&w];
            let llr = ((1.0 - e) / e).ln();
            log_odds[q] += if a { llr } else { -llr };
        }
        let new_posterior: Vec<f64> = log_odds
            .iter()
            .enumerate()
            .map(|(q, &lo)| {
                if tot_votes[q] == 0.0 {
                    prior_pos
                } else {
                    1.0 / (1.0 + (-lo).exp())
                }
            })
            .collect();
        let delta = posterior
            .iter()
            .zip(&new_posterior)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        posterior = new_posterior;
        if delta < 1e-6 {
            break;
        }
    }
    EmAggregate { posterior_pos: posterior, worker_error, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthesize answers: workers with known error rates answer every
    /// question; returns (truth, answers).
    fn synth(
        n_q: usize,
        worker_errors: &[f64],
        seed: u64,
    ) -> (Vec<bool>, Vec<TaggedAnswer>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let truth: Vec<bool> = (0..n_q).map(|q| q % 5 == 0).collect();
        let mut answers = Vec::new();
        for (q, &t) in truth.iter().enumerate() {
            for (w, &e) in worker_errors.iter().enumerate() {
                let a = t ^ rng.gen_bool(e);
                answers.push((q, w, a));
            }
        }
        (truth, answers)
    }

    fn accuracy(labels: &[bool], truth: &[bool]) -> f64 {
        labels.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
    }

    #[test]
    fn recovers_labels_from_reliable_workers() {
        let (truth, answers) = synth(200, &[0.1, 0.1, 0.1], 1);
        let agg = dawid_skene(200, &answers, 0.2);
        assert!(accuracy(&agg.labels(), &truth) > 0.95);
    }

    #[test]
    fn identifies_the_spammer() {
        let (_, answers) = synth(300, &[0.05, 0.05, 0.45], 2);
        let agg = dawid_skene(300, &answers, 0.2);
        assert!(agg.worker_error[&2] > 0.3, "spammer error {:?}", agg.worker_error);
        assert!(agg.worker_error[&0] < 0.15);
    }

    #[test]
    fn em_beats_majority_with_heterogeneous_workers() {
        // Two spammers + one expert: majority voting follows the spammers;
        // EM should learn to trust the expert.
        let (truth, answers) = synth(400, &[0.02, 0.4, 0.4], 3);
        let agg = dawid_skene(400, &answers, 0.2);
        // Majority baseline.
        let mut pos = vec![0; 400];
        for &(q, _, a) in &answers {
            if a {
                pos[q] += 1;
            }
        }
        let majority: Vec<bool> = pos.iter().map(|&c| c >= 2).collect();
        let em_acc = accuracy(&agg.labels(), &truth);
        let mv_acc = accuracy(&majority, &truth);
        assert!(
            em_acc > mv_acc,
            "EM ({em_acc}) must beat majority ({mv_acc}) here"
        );
    }

    #[test]
    fn unanswered_questions_get_the_prior() {
        let answers = vec![(0usize, 0usize, true)];
        let agg = dawid_skene(3, &answers, 0.1);
        assert!((agg.posterior_pos[1] - 0.1).abs() < 1e-9);
        assert!((agg.posterior_pos[2] - 0.1).abs() < 1e-9);
        // One positive answer shifts the answered question up from the
        // prior, though a skewed prior can keep it below 0.5 — correct
        // Bayesian behavior.
        assert!(agg.posterior_pos[0] > 0.1);
        let neutral = dawid_skene(3, &answers, 0.5);
        assert!(neutral.posterior_pos[0] > 0.5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_question_index_panics() {
        dawid_skene(1, &[(5, 0, true)], 0.5);
    }

    #[test]
    fn deterministic() {
        let (_, answers) = synth(50, &[0.1, 0.2], 4);
        let a = dawid_skene(50, &answers, 0.3);
        let b = dawid_skene(50, &answers, 0.3);
        assert_eq!(a.posterior_pos, b.posterior_pos);
    }
}
