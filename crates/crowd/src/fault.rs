//! Fault injection and recovery for the simulated marketplace.
//!
//! The paper's platform is idealized: every posted HIT completes and every
//! assignment is answered. Real marketplaces are not like that — *Human
//! powered Sorts and Joins* (Marcus et al., VLDB 2011) measures HIT expiry
//! and abandonment on live Mechanical Turk, and CrowdER (Wang et al.,
//! VLDB 2012) shows crowd-EM cost and quality hinge on how the system
//! reacts to that noise. This module injects those failure modes into
//! [`CrowdPlatform`](crate::platform::CrowdPlatform), seeded and
//! deterministic, and defines the [`RetryPolicy`] the platform uses to
//! recover: repost with exponential backoff and optional price escalation
//! (the §10 money–time model — paying more gets the crowd to answer
//! faster, and to pick up reposted work at all).
//!
//! **Pay for what you use:** a fully zeroed [`FaultConfig`] (the default)
//! never draws from the fault RNG and takes the exact pre-fault code path,
//! so fault-free runs are byte-identical to a platform built without the
//! fault layer.

use crate::oracle::PairKey;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Seeded fault-injection probabilities. All default to zero (no faults);
/// every draw comes from a dedicated RNG stream seeded by [`Self::seed`],
/// so enabling faults never perturbs worker-answer randomness.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a posted HIT expires unanswered: no worker picks
    /// it up within its lifetime, nothing is paid, and the platform only
    /// notices after waiting out the HIT's nominal duration.
    pub hit_expiry_prob: f64,
    /// Per-assignment probability that the worker abandons the question
    /// mid-flight: the answer is lost (and not paid), the time is not.
    pub abandonment_prob: f64,
    /// Per-HIT probability that an assigned worker never shows up; a
    /// replacement is found after one extra answer-latency of delay.
    pub worker_no_show_prob: f64,
    /// Per-HIT probability that a worker permanently leaves the pool
    /// (attrition). The pool never shrinks below two workers.
    pub worker_attrition_prob: f64,
    /// Per-HIT-posting probability of a transient platform outage that
    /// delays the posting by [`Self::outage_secs`].
    pub outage_prob: f64,
    /// Duration of one transient outage, in simulated seconds.
    pub outage_secs: f64,
    /// Seed of the dedicated fault RNG stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            hit_expiry_prob: 0.0,
            abandonment_prob: 0.0,
            worker_no_show_prob: 0.0,
            worker_attrition_prob: 0.0,
            outage_prob: 0.0,
            outage_secs: 300.0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// Whether any failure mode can fire. `false` guarantees the platform
    /// never touches the fault RNG (the pay-for-what-you-use contract).
    pub fn enabled(&self) -> bool {
        self.hit_expiry_prob > 0.0
            || self.abandonment_prob > 0.0
            || self.worker_no_show_prob > 0.0
            || self.worker_attrition_prob > 0.0
            || self.outage_prob > 0.0
    }

    /// Assert every probability lies in `[0, 1]` and durations are finite.
    ///
    /// # Panics
    /// Panics on an out-of-range probability — construction-time misuse,
    /// not a runtime fault.
    pub fn validate(&self) {
        for (name, p) in [
            ("hit_expiry_prob", self.hit_expiry_prob),
            ("abandonment_prob", self.abandonment_prob),
            ("worker_no_show_prob", self.worker_no_show_prob),
            ("worker_attrition_prob", self.worker_attrition_prob),
            ("outage_prob", self.outage_prob),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0, 1], got {p}");
        }
        assert!(
            self.outage_secs.is_finite() && self.outage_secs >= 0.0,
            "outage_secs must be finite and non-negative"
        );
    }
}

/// How the platform recovers from expired or partially answered HITs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Reposts allowed after the initial attempt. `0` means one attempt
    /// only; unresolved questions are surfaced as incomplete.
    pub max_reposts: u32,
    /// Wait before the first repost, in simulated seconds (added to
    /// `Ledger.simulated_secs`).
    pub backoff_base_secs: f64,
    /// Multiplier applied to the backoff for each subsequent repost.
    pub backoff_factor: f64,
    /// Price multiplier applied per repost (the §10 money–time lever:
    /// escalate the pay to attract workers to work that stalled).
    /// `1.0` reposts at the original price.
    pub price_growth: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_reposts: 3,
            backoff_base_secs: 60.0,
            backoff_factor: 2.0,
            price_growth: 1.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before repost number `repost` (0-based): exponential in the
    /// number of reposts already made.
    pub fn backoff_secs(&self, repost: u32) -> f64 {
        self.backoff_base_secs * self.backoff_factor.powi(repost as i32)
    }
}

/// Counters for injected faults and the recovery work they caused.
/// Deterministic for a given seed at any thread count; surfaced in
/// `RunReport.perf`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultStats {
    /// HITs that expired unanswered.
    pub hits_expired: u64,
    /// Assignments abandoned mid-question.
    pub assignments_abandoned: u64,
    /// Assigned workers that never showed up.
    pub worker_no_shows: u64,
    /// Workers that permanently left the pool.
    pub workers_attrited: u64,
    /// Transient platform outages encountered.
    pub outages: u64,
    /// HITs reposted by the retry policy.
    pub reposts: u64,
    /// Simulated seconds spent waiting in retry backoff.
    pub backoff_secs: f64,
    /// HITs that exhausted their repost budget with questions still
    /// unresolved (the run is degraded).
    pub hits_failed: u64,
}

impl FaultStats {
    /// Field-wise difference `self - start` (counters only grow).
    pub fn delta(&self, start: &FaultStats) -> FaultStats {
        FaultStats {
            hits_expired: self.hits_expired - start.hits_expired,
            assignments_abandoned: self.assignments_abandoned - start.assignments_abandoned,
            worker_no_shows: self.worker_no_shows - start.worker_no_shows,
            workers_attrited: self.workers_attrited - start.workers_attrited,
            outages: self.outages - start.outages,
            reposts: self.reposts - start.reposts,
            backoff_secs: self.backoff_secs - start.backoff_secs,
            hits_failed: self.hits_failed - start.hits_failed,
        }
    }

    /// True when any fault fired.
    pub fn any(&self) -> bool {
        self.hits_expired > 0
            || self.assignments_abandoned > 0
            || self.worker_no_shows > 0
            || self.workers_attrited > 0
            || self.outages > 0
    }
}

/// Typed failures of the crowd layer. These replace the panics the
/// platform used to raise when labeling could not complete.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CrowdError {
    /// Labeling gave up with some requested pairs still unlabeled —
    /// retries were exhausted or progress stalled.
    Incomplete {
        /// Distinct pairs requested.
        requested: usize,
        /// Distinct pairs that did get labeled.
        labeled: usize,
        /// The pairs left unlabeled (first few; truncated for large sets).
        missing: Vec<PairKey>,
    },
    /// A labeling call was made with an empty request where the protocol
    /// requires at least one pair.
    EmptyRequest,
    /// A HIT exhausted its repost budget with questions unresolved.
    RetriesExhausted {
        /// Questions still unresolved when the budget ran out.
        unresolved: usize,
        /// Posting attempts made (1 + reposts).
        attempts: u32,
    },
}

impl fmt::Display for CrowdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CrowdError::Incomplete { requested, labeled, missing } => write!(
                f,
                "crowd labeling incomplete: {labeled} of {requested} pairs labeled \
                 ({} unresolved)",
                missing.len()
            ),
            CrowdError::EmptyRequest => write!(f, "empty labeling request"),
            CrowdError::RetriesExhausted { unresolved, attempts } => write!(
                f,
                "HIT retries exhausted after {attempts} attempts with \
                 {unresolved} questions unresolved"
            ),
        }
    }
}

impl std::error::Error for CrowdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_config_is_disabled() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        cfg.validate();
    }

    #[test]
    fn any_positive_probability_enables() {
        for set in [
            FaultConfig { hit_expiry_prob: 0.1, ..Default::default() },
            FaultConfig { abandonment_prob: 0.1, ..Default::default() },
            FaultConfig { worker_no_show_prob: 0.1, ..Default::default() },
            FaultConfig { worker_attrition_prob: 0.1, ..Default::default() },
            FaultConfig { outage_prob: 0.1, ..Default::default() },
        ] {
            assert!(set.enabled(), "{set:?}");
            set.validate();
        }
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_probability_rejected() {
        FaultConfig { hit_expiry_prob: 1.5, ..Default::default() }.validate();
    }

    #[test]
    fn backoff_is_exponential() {
        let r = RetryPolicy { backoff_base_secs: 10.0, backoff_factor: 3.0, ..Default::default() };
        assert_eq!(r.backoff_secs(0), 10.0);
        assert_eq!(r.backoff_secs(1), 30.0);
        assert_eq!(r.backoff_secs(2), 90.0);
    }

    #[test]
    fn stats_delta_subtracts_fieldwise() {
        let start = FaultStats { hits_expired: 2, reposts: 1, ..Default::default() };
        let end = FaultStats { hits_expired: 5, reposts: 4, backoff_secs: 60.0, ..Default::default() };
        let d = end.delta(&start);
        assert_eq!(d.hits_expired, 3);
        assert_eq!(d.reposts, 3);
        assert_eq!(d.backoff_secs, 60.0);
        assert!(d.any());
        assert!(!FaultStats::default().any());
    }

    #[test]
    fn errors_render() {
        let e = CrowdError::Incomplete {
            requested: 10,
            labeled: 7,
            missing: vec![PairKey::new(1, 2)],
        };
        assert!(e.to_string().contains("7 of 10"));
        assert!(CrowdError::EmptyRequest.to_string().contains("empty"));
        let r = CrowdError::RetriesExhausted { unresolved: 3, attempts: 4 };
        assert!(r.to_string().contains("4 attempts"));
    }
}
