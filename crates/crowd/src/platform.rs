//! The simulated crowdsourcing platform Corleone talks to.
//!
//! One call matters: [`CrowdPlatform::label_batch`] — "get this batch of
//! pairs labeled under this voting scheme". Behind it sit the worker pool,
//! HIT packing with the §8.3 cache interaction, the vote resolution of
//! §8.2, and a money/label ledger that the experiment tables report.
//!
//! Faithful to the paper, a batch request may return labels for only a
//! *subset* of the requested pairs: HITs always carry 10 questions, and
//! leftover questions that cannot fill a HIT are dropped when the batch
//! already produced labels (cached or fresh). When a batch would otherwise
//! return nothing, one HIT is padded with repeated questions (duplicates
//! are paid for and discarded) so progress is always made.
//!
//! ## Faults and recovery
//!
//! A platform built with [`CrowdPlatform::with_faults`] injects the
//! marketplace failure modes of [`FaultConfig`] — HIT expiry, assignment
//! abandonment, worker no-shows and attrition, transient outages — from a
//! dedicated seeded RNG stream, and recovers per its [`RetryPolicy`]:
//! unresolved questions are repacked and reposted with exponential backoff
//! (charged to `Ledger.simulated_secs`) and optional price escalation.
//! A HIT that exhausts its repost budget surfaces its questions as
//! *unlabeled* (the batch contract already permits subsets) and bumps
//! `FaultStats.hits_failed`. With the default zeroed [`FaultConfig`] the
//! fault RNG is never drawn and the platform behaves exactly like one
//! without the fault layer.

use crate::cache::{LabelCache, Strength};
use crate::fault::{CrowdError, FaultConfig, FaultStats, RetryPolicy};
use crate::hit::{Hit, HIT_SIZE};
use crate::oracle::{PairKey, TruthOracle};
use crate::voting::{resolve, Scheme};
use crate::worker::WorkerPool;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Platform configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrowdConfig {
    /// Price per solicited answer, in cents (the paper pays 1¢ per
    /// question for Restaurants/Citations, 2¢ for Products).
    pub price_cents: f64,
    /// RNG seed for worker selection and error draws.
    pub seed: u64,
    /// Mean seconds a worker takes to answer one question when paid
    /// [`Self::reference_price_cents`]. Models the §10 money–time
    /// trade-off: "paying more per question often gets the crowd to
    /// answer faster".
    pub base_latency_secs: f64,
    /// Price at which `base_latency_secs` applies.
    pub reference_price_cents: f64,
    /// Latency elasticity: latency scales by
    /// `(reference_price / price)^elasticity`. 0 disables the model.
    pub latency_elasticity: f64,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            price_cents: 1.0,
            seed: 0,
            base_latency_secs: 30.0,
            reference_price_cents: 1.0,
            latency_elasticity: 0.5,
        }
    }
}

/// Running totals of crowd activity and spend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    /// Individual worker answers solicited (each is paid).
    pub answers_solicited: u64,
    /// Question slots sent to the crowd, including padding duplicates.
    /// Slots of an expired HIT are not counted (the HIT never ran).
    pub questions_asked: u64,
    /// HITs posted, including reposts of faulted HITs.
    pub hits_posted: u64,
    /// Distinct pairs labeled by the crowd (excludes cache hits).
    pub pairs_labeled: u64,
    /// Pairs served from the label cache instead of the crowd.
    pub cache_hits: u64,
    /// Total spend in cents.
    pub total_cents: f64,
    /// Simulated wall-clock seconds of crowd work, including retry
    /// backoff and outage delays. HITs posted in one batch run in
    /// parallel across workers; questions within a HIT are answered
    /// sequentially by each assignee.
    pub simulated_secs: f64,
}

impl Ledger {
    /// Total spend in dollars.
    pub fn total_dollars(&self) -> f64 {
        self.total_cents / 100.0
    }
}

/// Complete serializable state of a [`CrowdPlatform`] mid-run, captured by
/// [`CrowdPlatform::export_state`] for checkpointing and restored by
/// [`CrowdPlatform::import_state`].
///
/// The two RNG stream positions travel as hex-string word arrays rather
/// than numbers: the vendored JSON layer routes numbers through `f64`,
/// which cannot represent the full `u64` range of xoshiro state words.
/// Restoring the *positions* (not just the seeds) is what makes a resumed
/// run draw the exact same worker answers and fault events an
/// uninterrupted run would have drawn.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlatformState {
    /// Worker pool, including any attrition that already happened.
    pub workers: WorkerPool,
    /// Platform configuration.
    pub cfg: CrowdConfig,
    /// Every crowd label produced so far.
    pub cache: LabelCache,
    /// Cumulative spend/label/simulated-clock ledger.
    pub ledger: Ledger,
    /// Fault injection configuration.
    pub faults: FaultConfig,
    /// Recovery policy.
    pub retry: RetryPolicy,
    /// Cumulative fault counters.
    pub fault_stats: FaultStats,
    /// Worker-RNG stream position (hex words).
    pub rng_state: [String; 4],
    /// Fault-RNG stream position (hex words).
    pub fault_rng_state: [String; 4],
}

/// Result of driving one HIT to completion or retry exhaustion.
struct HitRun {
    /// Labels produced across all attempts. Questions that exhausted the
    /// repost budget are simply absent (callers requery or give up).
    labeled: Vec<(PairKey, bool)>,
    /// Total simulated duration, including backoff between attempts.
    secs: f64,
}

/// Consecutive zero-progress rounds after which [`CrowdPlatform::try_label_all`]
/// reports the remaining pairs as unlabelable.
const MAX_STALLED_ROUNDS: u32 = 3;

/// The simulated platform: workers + cache + ledger (+ optional faults).
#[derive(Debug, Clone)]
pub struct CrowdPlatform {
    workers: WorkerPool,
    cfg: CrowdConfig,
    cache: LabelCache,
    ledger: Ledger,
    rng: StdRng,
    faults: FaultConfig,
    retry: RetryPolicy,
    fault_rng: StdRng,
    fault_stats: FaultStats,
}

impl CrowdPlatform {
    /// Create a fault-free platform over a worker pool.
    pub fn new(workers: WorkerPool, cfg: CrowdConfig) -> Self {
        Self::with_faults(workers, cfg, FaultConfig::default(), RetryPolicy::default())
    }

    /// Create a platform with fault injection and a recovery policy.
    ///
    /// # Panics
    /// Panics if a fault probability is outside `[0, 1]` (construction-time
    /// misuse, not a runtime fault).
    pub fn with_faults(
        workers: WorkerPool,
        cfg: CrowdConfig,
        faults: FaultConfig,
        retry: RetryPolicy,
    ) -> Self {
        faults.validate();
        let rng = StdRng::seed_from_u64(cfg.seed);
        // Dedicated stream: mixing in a constant decorrelates it from the
        // worker RNG even when both seeds are equal.
        let fault_rng = StdRng::seed_from_u64(faults.seed ^ 0xFA17_1A3E_C7ED_5EED);
        CrowdPlatform {
            workers,
            cfg,
            cache: LabelCache::new(),
            ledger: Ledger::default(),
            rng,
            faults,
            retry,
            fault_rng,
            fault_stats: FaultStats::default(),
        }
    }

    /// The running ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The label cache (all crowd labels produced so far).
    pub fn cache(&self) -> &LabelCache {
        &self.cache
    }

    /// Fault and recovery counters.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// The fault configuration in effect.
    pub fn fault_config(&self) -> &FaultConfig {
        &self.faults
    }

    /// The retry policy in effect.
    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.retry
    }

    /// The worker pool (shrinks under attrition faults).
    pub fn workers(&self) -> &WorkerPool {
        &self.workers
    }

    /// Capture the platform's complete state for a checkpoint: pool,
    /// config, label cache, ledger, fault layer, and — crucially — the
    /// exact positions of both RNG streams.
    pub fn export_state(&self) -> PlatformState {
        PlatformState {
            workers: self.workers.clone(),
            cfg: self.cfg.clone(),
            cache: self.cache.clone(),
            ledger: self.ledger,
            faults: self.faults,
            retry: self.retry,
            fault_stats: self.fault_stats,
            rng_state: store::encode_rng_state(self.rng.state()),
            fault_rng_state: store::encode_rng_state(self.fault_rng.state()),
        }
    }

    /// Reconstruct a platform from an exported state. The result is
    /// behaviorally indistinguishable from the platform at export time:
    /// both RNG streams continue from their recorded positions, so
    /// subsequent worker answers and fault draws match what the original
    /// platform would have produced.
    pub fn import_state(state: &PlatformState) -> Result<Self, store::StoreError> {
        state.faults.validate();
        Ok(CrowdPlatform {
            workers: state.workers.clone(),
            cfg: state.cfg.clone(),
            cache: state.cache.clone(),
            ledger: state.ledger,
            rng: StdRng::from_state(store::decode_rng_state(&state.rng_state)?),
            faults: state.faults,
            retry: state.retry,
            fault_rng: StdRng::from_state(store::decode_rng_state(&state.fault_rng_state)?),
            fault_stats: state.fault_stats,
        })
    }

    /// Label a batch of pairs under `scheme`. Returns `(pair, label)` for
    /// every pair that ended up labeled — possibly a subset of the request
    /// (see module docs; under faults, pairs whose HIT exhausted its
    /// reposts are also missing). Duplicate pairs in the request are
    /// collapsed.
    pub fn label_batch(
        &mut self,
        oracle: &dyn TruthOracle,
        pairs: &[PairKey],
        scheme: Scheme,
    ) -> Vec<(PairKey, bool)> {
        // Deduplicate, preserving request order.
        let mut seen = HashSet::new();
        let pairs: Vec<PairKey> = pairs
            .iter()
            .copied()
            .filter(|p| seen.insert(*p))
            .collect();

        let mut results: Vec<(PairKey, bool)> = Vec::new();
        let mut uncached: Vec<PairKey> = Vec::new();
        let mut cached_pairs = 0u64;
        for &p in &pairs {
            if let Some(hit) = self.cache.lookup(p, scheme) {
                results.push((p, hit.label));
                cached_pairs += 1;
            } else {
                uncached.push(p);
            }
        }
        self.ledger.cache_hits += cached_pairs;

        // Pack full HITs; decide about the leftover afterwards. HITs of
        // one batch run concurrently, so batch latency is the slowest HIT.
        let full = uncached.len() / HIT_SIZE * HIT_SIZE;
        let mut batch_secs = 0.0f64;
        for chunk in uncached[..full].chunks(HIT_SIZE) {
            let hit = Hit::pack(chunk);
            let run = self.run_hit(oracle, &hit, scheme);
            results.extend(run.labeled);
            batch_secs = batch_secs.max(run.secs);
        }
        let leftover = &uncached[full..];
        if !leftover.is_empty() && results.is_empty() {
            // The batch would produce nothing; pad one HIT so the caller
            // always makes progress (duplicate slots are paid, discarded).
            let hit = Hit::pack(leftover);
            let run = self.run_hit(oracle, &hit, scheme);
            results.extend(run.labeled);
            batch_secs = batch_secs.max(run.secs);
        }
        self.ledger.simulated_secs += batch_secs;
        results
    }

    /// Label every requested pair, padding HITs as needed, or report which
    /// pairs could not be labeled. Used where the protocol requires a
    /// complete batch (e.g. the four seed examples).
    ///
    /// Under fault injection, pairs whose HITs keep failing past the
    /// retry budget stall the loop; after [`MAX_STALLED_ROUNDS`] rounds
    /// with zero progress (or an absolute round cap) the call returns
    /// [`CrowdError::Incomplete`] with the labels gathered so far left in
    /// the cache/ledger.
    pub fn try_label_all(
        &mut self,
        oracle: &dyn TruthOracle,
        pairs: &[PairKey],
        scheme: Scheme,
    ) -> Result<Vec<(PairKey, bool)>, CrowdError> {
        let requested = pairs.iter().copied().collect::<HashSet<_>>().len();
        let mut remaining: Vec<PairKey> = pairs.to_vec();
        let mut out = Vec::new();
        let mut stalled = 0u32;
        let mut guard = 0u32;
        while !remaining.is_empty() {
            let before = out.len();
            let got = self.label_batch(oracle, &remaining, scheme);
            let got_keys: HashSet<PairKey> = got.iter().map(|(p, _)| *p).collect();
            out.extend(got.iter().copied());
            remaining.retain(|p| !got_keys.contains(p));
            if remaining.is_empty() {
                break;
            }
            // Force the stragglers through a padded HIT.
            let chunk_len = remaining.len().min(HIT_SIZE);
            let chunk: Vec<PairKey> = remaining[..chunk_len].to_vec();
            let hit = Hit::pack(&chunk);
            let run = self.run_hit(oracle, &hit, scheme);
            self.ledger.simulated_secs += run.secs;
            let fresh_keys: HashSet<PairKey> = run.labeled.iter().map(|(p, _)| *p).collect();
            out.extend(run.labeled.iter().copied());
            remaining.retain(|p| !fresh_keys.contains(p));
            stalled = if out.len() == before { stalled + 1 } else { 0 };
            guard += 1;
            if stalled >= MAX_STALLED_ROUNDS || guard >= 100_000 {
                let mut missing: Vec<PairKey> =
                    remaining.iter().copied().collect::<HashSet<_>>().into_iter().collect();
                missing.sort();
                missing.truncate(32);
                return Err(CrowdError::Incomplete { requested, labeled: out.len(), missing });
            }
        }
        Ok(out)
    }

    /// Panicking wrapper over [`Self::try_label_all`], kept for callers
    /// that treat incomplete labeling as a programming error.
    ///
    /// # Panics
    /// Panics if labeling cannot complete (e.g. persistent injected
    /// faults past the retry budget).
    pub fn label_all(
        &mut self,
        oracle: &dyn TruthOracle,
        pairs: &[PairKey],
        scheme: Scheme,
    ) -> Vec<(PairKey, bool)> {
        self.try_label_all(oracle, pairs, scheme)
            .unwrap_or_else(|e| panic!("label_all failed to converge: {e}"))
    }

    /// Seconds one answer takes at the configured pay rate (the §10
    /// money–time model, without jitter).
    pub fn answer_latency_secs(&self) -> f64 {
        self.answer_latency_secs_at(self.cfg.price_cents)
    }

    /// Seconds one answer takes at an arbitrary pay rate — reposted HITs
    /// with price escalation run faster per the same elasticity model.
    fn answer_latency_secs_at(&self, price_cents: f64) -> f64 {
        if self.cfg.latency_elasticity == 0.0 || self.cfg.base_latency_secs == 0.0 {
            return self.cfg.base_latency_secs;
        }
        let ratio = self.cfg.reference_price_cents / price_cents.max(1e-9);
        self.cfg.base_latency_secs * ratio.powf(self.cfg.latency_elasticity)
    }

    /// Post one HIT and drive it to completion or retry exhaustion:
    /// attempt, then repost unresolved questions with exponential backoff
    /// and optional price escalation until everything resolves or the
    /// repost budget runs out.
    fn run_hit(&mut self, oracle: &dyn TruthOracle, hit: &Hit, scheme: Scheme) -> HitRun {
        let mut price = self.cfg.price_cents;
        let mut questions = hit.questions.clone();
        let mut labeled: Vec<(PairKey, bool)> = Vec::new();
        let mut secs = 0.0f64;
        let mut reposts = 0u32;
        loop {
            let (fresh, unresolved, attempt_secs) =
                self.attempt_hit(oracle, &questions, scheme, price);
            labeled.extend(fresh);
            secs += attempt_secs;
            if unresolved.is_empty() {
                return HitRun { labeled, secs };
            }
            if reposts >= self.retry.max_reposts {
                self.fault_stats.hits_failed += 1;
                return HitRun { labeled, secs };
            }
            let backoff = self.retry.backoff_secs(reposts);
            secs += backoff;
            self.fault_stats.backoff_secs += backoff;
            self.fault_stats.reposts += 1;
            reposts += 1;
            price *= self.retry.price_growth;
            questions = Hit::pack(&unresolved).questions;
        }
    }

    /// One posting attempt of a HIT at the given price. Duplicate slots
    /// (padding) are paid for but only the first resolution of a pair
    /// produces a label. Returns the labels, the distinct questions left
    /// unresolved by injected faults, and the attempt's duration.
    fn attempt_hit(
        &mut self,
        oracle: &dyn TruthOracle,
        questions: &[PairKey],
        scheme: Scheme,
        price: f64,
    ) -> (Vec<(PairKey, bool)>, Vec<PairKey>, f64) {
        self.ledger.hits_posted += 1;
        let per_answer = self.answer_latency_secs_at(price);
        let faulty = self.faults.enabled();
        let mut secs = 0.0f64;

        if faulty {
            if self.faults.outage_prob > 0.0 && self.fault_rng.gen_bool(self.faults.outage_prob)
            {
                // Transient platform outage: posting is delayed, then
                // proceeds normally.
                self.fault_stats.outages += 1;
                secs += self.faults.outage_secs;
            }
            if self.faults.hit_expiry_prob > 0.0
                && self.fault_rng.gen_bool(self.faults.hit_expiry_prob)
            {
                // Nobody picked the HIT up within its lifetime: nothing is
                // answered or paid, and the platform only notices after
                // waiting out the HIT's nominal duration.
                self.fault_stats.hits_expired += 1;
                secs += per_answer * questions.len() as f64;
                let mut unresolved = questions.to_vec();
                unresolved.sort();
                unresolved.dedup();
                return (Vec::new(), unresolved, secs);
            }
            if self.faults.worker_no_show_prob > 0.0
                && self.fault_rng.gen_bool(self.faults.worker_no_show_prob)
            {
                // An assignee never showed; a replacement picks the HIT up
                // one answer-latency later.
                self.fault_stats.worker_no_shows += 1;
                secs += per_answer;
            }
            if self.faults.worker_attrition_prob > 0.0
                && self.fault_rng.gen_bool(self.faults.worker_attrition_prob)
                && self.workers.remove_one()
            {
                self.fault_stats.workers_attrited += 1;
            }
        }

        let mut labeled: Vec<(PairKey, bool)> = Vec::new();
        let mut done: HashSet<PairKey> = HashSet::new();
        let mut max_assignment_answers = 0u32;
        for &q in questions {
            self.ledger.questions_asked += 1;
            if faulty
                && self.faults.abandonment_prob > 0.0
                && self.fault_rng.gen_bool(self.faults.abandonment_prob)
            {
                // The assignee abandons the question mid-flight: the time
                // is spent, the answer is lost, nothing is paid.
                self.fault_stats.assignments_abandoned += 1;
                max_assignment_answers = max_assignment_answers.max(1);
                continue;
            }
            let outcome = resolve(scheme, &self.workers, oracle.true_label(q), &mut self.rng);
            self.ledger.answers_solicited += u64::from(outcome.answers);
            self.ledger.total_cents += f64::from(outcome.answers) * price;
            max_assignment_answers = max_assignment_answers.max(outcome.answers);
            if done.insert(q) {
                let strength = if outcome.strong { Strength::Strong } else { Strength::Weak };
                self.cache.insert(q, outcome.label, strength);
                self.ledger.pairs_labeled += 1;
                labeled.push((q, outcome.label));
            }
        }
        // Assignments run in parallel across workers; each assignee
        // answers the HIT's 10 questions sequentially. The HIT finishes
        // when its most-solicited question's last answer lands.
        secs += per_answer * questions.len() as f64
            + per_answer * f64::from(max_assignment_answers.saturating_sub(1));
        let mut unresolved: Vec<PairKey> = questions
            .iter()
            .copied()
            .filter(|q| !done.contains(q))
            .collect();
        unresolved.sort();
        unresolved.dedup();
        (labeled, unresolved, secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GoldOracle;

    fn platform(err: f64, seed: u64) -> CrowdPlatform {
        let pool = if err == 0.0 {
            WorkerPool::perfect(5)
        } else {
            WorkerPool::uniform(5, err)
        };
        CrowdPlatform::new(pool, CrowdConfig { price_cents: 1.0, seed, ..Default::default() })
    }

    fn keys(n: u32) -> Vec<PairKey> {
        (0..n).map(|i| PairKey::new(i, i)).collect()
    }

    #[test]
    fn labels_full_batches_exactly() {
        let oracle = GoldOracle::from_pairs([(0, 0), (1, 1)]);
        let mut p = platform(0.0, 1);
        let got = p.label_batch(&oracle, &keys(20), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 20);
        assert!(got.iter().filter(|(_, l)| *l).count() == 2);
        assert_eq!(p.ledger().hits_posted, 2);
        assert_eq!(p.ledger().pairs_labeled, 20);
        // Perfect crowd: 2 answers per question, 1¢ each.
        assert_eq!(p.ledger().total_cents, 40.0);
    }

    #[test]
    fn leftover_dropped_when_batch_produced_labels() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 2);
        let got = p.label_batch(&oracle, &keys(13), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 10, "one full HIT, 3 leftover dropped");
    }

    #[test]
    fn small_batch_padded_not_dropped() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 3);
        let got = p.label_batch(&oracle, &keys(4), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 4, "padded HIT must label all 4 distinct pairs");
        assert_eq!(p.ledger().questions_asked, 10, "padding slots are paid");
        assert_eq!(p.ledger().pairs_labeled, 4);
    }

    #[test]
    fn cache_reused_across_batches() {
        let oracle = GoldOracle::from_pairs([(0, 0)]);
        let mut p = platform(0.0, 4);
        let first = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert_eq!(first.len(), 10);
        let cents_before = p.ledger().total_cents;
        let second = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert_eq!(second.len(), 10);
        assert_eq!(p.ledger().total_cents, cents_before, "all from cache");
        assert_eq!(p.ledger().cache_hits, 10, "one per pair served from cache");
    }

    #[test]
    fn paper_packing_rule_15_cached_of_20() {
        // §8.3: k = 15 cached of a 20-example batch (k > 10) → return only
        // the cached 15, ignore the remaining 5.
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 5);
        let cached: Vec<PairKey> = (0..15).map(|i| PairKey::new(i, i)).collect();
        p.label_all(&oracle, &cached, Scheme::TwoPlusOne);
        let hits_before = p.ledger().hits_posted;
        let batch = keys(20); // 15 cached + 5 new
        let got = p.label_batch(&oracle, &batch, Scheme::TwoPlusOne);
        assert_eq!(got.len(), 15);
        assert_eq!(p.ledger().hits_posted, hits_before, "no new HIT posted");
    }

    #[test]
    fn paper_packing_rule_7_cached_of_20() {
        // §8.3: k = 7 cached (k ≤ 10) → one HIT of 10 fresh questions,
        // return 10 + 7 = 17, drop the other 3.
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 6);
        let cached: Vec<PairKey> = (0..7).map(|i| PairKey::new(i, i)).collect();
        p.label_all(&oracle, &cached, Scheme::TwoPlusOne);
        let got = p.label_batch(&oracle, &keys(20), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 17);
    }

    #[test]
    fn weak_cache_entry_does_not_serve_strong_request() {
        let oracle = GoldOracle::from_pairs([(0, 0)]);
        let mut p = platform(0.0, 7);
        p.label_all(&oracle, &[PairKey::new(0, 0)], Scheme::TwoPlusOne);
        let labeled_before = p.ledger().pairs_labeled;
        p.label_all(&oracle, &[PairKey::new(0, 0)], Scheme::StrongMajority);
        assert!(p.ledger().pairs_labeled > labeled_before, "must re-ask the crowd");
    }

    #[test]
    fn label_all_labels_everything() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.2, 8);
        let got = p.label_all(&oracle, &keys(37), Scheme::Hybrid);
        let distinct: HashSet<PairKey> = got.iter().map(|(p, _)| *p).collect();
        assert_eq!(distinct.len(), 37);
    }

    #[test]
    fn noisy_crowd_costs_more_than_perfect() {
        let oracle = GoldOracle::from_pairs([(0, 0), (1, 1), (2, 2)]);
        let mut perfect = platform(0.0, 9);
        let mut noisy = platform(0.3, 9);
        perfect.label_batch(&oracle, &keys(30), Scheme::StrongMajority);
        noisy.label_batch(&oracle, &keys(30), Scheme::StrongMajority);
        assert!(noisy.ledger().total_cents > perfect.ledger().total_cents);
    }

    #[test]
    fn duplicates_in_request_collapse() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 10);
        let mut req = keys(10);
        req.extend(keys(10));
        let got = p.label_batch(&oracle, &req, Scheme::TwoPlusOne);
        assert_eq!(got.len(), 10);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::oracle::GoldOracle;

    fn keys(n: u32) -> Vec<PairKey> {
        (0..n).map(|i| PairKey::new(i, i)).collect()
    }

    fn faulty(faults: FaultConfig, retry: RetryPolicy, seed: u64) -> CrowdPlatform {
        CrowdPlatform::with_faults(
            WorkerPool::perfect(5),
            CrowdConfig { price_cents: 1.0, seed, ..Default::default() },
            faults,
            retry,
        )
    }

    #[test]
    fn zeroed_faults_are_byte_identical_to_plain_platform() {
        let oracle = GoldOracle::from_pairs([(0, 0), (3, 3)]);
        let mut plain = CrowdPlatform::new(
            WorkerPool::uniform(5, 0.2),
            CrowdConfig { price_cents: 1.0, seed: 11, ..Default::default() },
        );
        let mut zeroed = CrowdPlatform::with_faults(
            WorkerPool::uniform(5, 0.2),
            CrowdConfig { price_cents: 1.0, seed: 11, ..Default::default() },
            FaultConfig::default(),
            RetryPolicy::default(),
        );
        let a = plain.label_batch(&oracle, &keys(23), Scheme::Hybrid);
        let b = zeroed.label_batch(&oracle, &keys(23), Scheme::Hybrid);
        assert_eq!(a, b, "labels must not depend on the (disabled) fault layer");
        assert_eq!(plain.ledger(), zeroed.ledger());
        assert_eq!(*zeroed.fault_stats(), FaultStats::default());
    }

    #[test]
    fn certain_expiry_without_retries_labels_nothing_and_pays_nothing() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = faulty(
            FaultConfig { hit_expiry_prob: 1.0, ..Default::default() },
            RetryPolicy { max_reposts: 0, ..Default::default() },
            1,
        );
        let got = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert!(got.is_empty());
        assert_eq!(p.ledger().total_cents, 0.0, "expired HITs are not paid");
        assert_eq!(p.fault_stats().hits_expired, 1);
        assert_eq!(p.fault_stats().hits_failed, 1);
        assert_eq!(p.fault_stats().reposts, 0);
        assert!(p.ledger().simulated_secs > 0.0, "the expiry window still passes");
    }

    #[test]
    fn retries_recover_from_expiry_and_charge_backoff() {
        let oracle = GoldOracle::from_pairs([]);
        // ~50% expiry with a generous repost budget: the batch resolves.
        let mut p = faulty(
            FaultConfig { hit_expiry_prob: 0.5, ..Default::default() },
            RetryPolicy { max_reposts: 20, backoff_base_secs: 60.0, ..Default::default() },
            2,
        );
        let got = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 10, "retries must eventually label the batch");
        let s = p.fault_stats();
        assert!(s.hits_expired > 0, "seed 2 must draw at least one expiry");
        assert_eq!(s.reposts, s.hits_expired, "every expiry triggers one repost");
        assert_eq!(s.hits_failed, 0);
        assert!(
            s.backoff_secs >= 60.0 * s.reposts as f64,
            "exponential backoff is charged per repost"
        );
        // And the backoff landed in the ledger's simulated clock.
        let mut clean = faulty(FaultConfig::default(), RetryPolicy::default(), 2);
        clean.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert!(p.ledger().simulated_secs > clean.ledger().simulated_secs + s.backoff_secs - 1e-9);
    }

    #[test]
    fn abandonment_loses_answers_but_not_money() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = faulty(
            FaultConfig { abandonment_prob: 1.0, ..Default::default() },
            RetryPolicy { max_reposts: 2, ..Default::default() },
            3,
        );
        let got = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert!(got.is_empty(), "every assignment was abandoned");
        assert_eq!(p.ledger().total_cents, 0.0, "abandoned assignments are unpaid");
        assert_eq!(p.fault_stats().assignments_abandoned, 30, "10 slots × 3 attempts");
        assert_eq!(p.fault_stats().hits_failed, 1);
        assert_eq!(p.ledger().pairs_labeled, 0);
    }

    #[test]
    fn partial_abandonment_resolves_via_reposts() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = faulty(
            FaultConfig { abandonment_prob: 0.3, ..Default::default() },
            RetryPolicy { max_reposts: 30, ..Default::default() },
            4,
        );
        let got = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 10);
        assert!(p.fault_stats().assignments_abandoned > 0);
        assert_eq!(p.fault_stats().hits_failed, 0);
    }

    #[test]
    fn price_escalation_pays_more_on_reposts() {
        let oracle = GoldOracle::from_pairs([]);
        let run = |growth: f64| {
            let mut p = faulty(
                FaultConfig { abandonment_prob: 0.5, ..Default::default() },
                RetryPolicy { max_reposts: 30, price_growth: growth, ..Default::default() },
                5,
            );
            p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
            (p.fault_stats().reposts, p.ledger().total_cents)
        };
        let (reposts_flat, cents_flat) = run(1.0);
        let (reposts_esc, cents_esc) = run(2.0);
        // Same seed → same fault draws → same repost schedule.
        assert_eq!(reposts_flat, reposts_esc);
        assert!(reposts_flat > 0, "seed 5 must trigger reposts");
        assert!(
            cents_esc > cents_flat,
            "escalated reposts must cost more ({cents_esc} vs {cents_flat})"
        );
    }

    #[test]
    fn outages_delay_but_do_not_lose_work() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = faulty(
            FaultConfig { outage_prob: 1.0, outage_secs: 500.0, ..Default::default() },
            RetryPolicy::default(),
            6,
        );
        let got = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 10);
        assert_eq!(p.fault_stats().outages, 1);
        let mut clean = faulty(FaultConfig::default(), RetryPolicy::default(), 6);
        clean.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert!(
            (p.ledger().simulated_secs - clean.ledger().simulated_secs - 500.0).abs() < 1e-9,
            "outage adds exactly its duration"
        );
    }

    #[test]
    fn attrition_shrinks_the_pool_but_never_empties_it() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = faulty(
            FaultConfig { worker_attrition_prob: 1.0, ..Default::default() },
            RetryPolicy::default(),
            7,
        );
        assert_eq!(p.workers().len(), 5);
        for round in 0..6u32 {
            let ks: Vec<PairKey> = (0..10).map(|i| PairKey::new(100 * round + i, i)).collect();
            p.label_batch(&oracle, &ks, Scheme::TwoPlusOne);
        }
        assert_eq!(p.workers().len(), 2, "attrition floors at two workers");
        assert_eq!(p.fault_stats().workers_attrited, 3);
    }

    #[test]
    fn no_shows_are_counted_and_slow_the_hit() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = faulty(
            FaultConfig { worker_no_show_prob: 1.0, ..Default::default() },
            RetryPolicy::default(),
            8,
        );
        let got = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 10);
        assert_eq!(p.fault_stats().worker_no_shows, 1);
        let mut clean = faulty(FaultConfig::default(), RetryPolicy::default(), 8);
        clean.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert!(p.ledger().simulated_secs > clean.ledger().simulated_secs);
    }

    #[test]
    fn try_label_all_surfaces_incomplete_under_total_failure() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = faulty(
            FaultConfig { hit_expiry_prob: 1.0, ..Default::default() },
            RetryPolicy { max_reposts: 1, ..Default::default() },
            9,
        );
        let err = p.try_label_all(&oracle, &keys(7), Scheme::TwoPlusOne).unwrap_err();
        match err {
            CrowdError::Incomplete { requested, labeled, missing } => {
                assert_eq!(requested, 7);
                assert_eq!(labeled, 0);
                assert_eq!(missing.len(), 7);
            }
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }

    #[test]
    fn try_label_all_recovers_under_survivable_faults() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = faulty(
            FaultConfig { hit_expiry_prob: 0.3, abandonment_prob: 0.2, ..Default::default() },
            RetryPolicy::default(),
            10,
        );
        let got = p.try_label_all(&oracle, &keys(25), Scheme::Hybrid).expect("recoverable");
        let distinct: HashSet<PairKey> = got.iter().map(|(k, _)| *k).collect();
        assert_eq!(distinct.len(), 25);
        assert!(p.fault_stats().any(), "faults must actually have fired");
    }

    #[test]
    #[should_panic(expected = "label_all failed to converge")]
    fn label_all_panics_on_unrecoverable_faults() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = faulty(
            FaultConfig { hit_expiry_prob: 1.0, ..Default::default() },
            RetryPolicy { max_reposts: 0, ..Default::default() },
            11,
        );
        p.label_all(&oracle, &keys(3), Scheme::TwoPlusOne);
    }

    #[test]
    fn exported_state_resumes_the_exact_streams() {
        let oracle = GoldOracle::from_pairs([(2, 2), (7, 7)]);
        let cfg = FaultConfig {
            hit_expiry_prob: 0.2,
            abandonment_prob: 0.15,
            worker_attrition_prob: 0.1,
            ..Default::default()
        };
        // Drive a platform halfway, checkpoint it, then compare the
        // restored copy against the original over the same second half.
        let mut original = CrowdPlatform::with_faults(
            WorkerPool::uniform(5, 0.2),
            CrowdConfig { price_cents: 1.0, seed: 42, ..Default::default() },
            cfg,
            RetryPolicy::default(),
        );
        original.label_batch(&oracle, &keys(20), Scheme::Hybrid);
        let state = original.export_state();

        // Round-trip through actual JSON, as a checkpoint would.
        let json = serde_json::to_string(&state).expect("serialize");
        let back: PlatformState = serde_json::from_str(&json).expect("deserialize");
        let mut restored = CrowdPlatform::import_state(&back).expect("import");

        assert_eq!(restored.ledger(), original.ledger());
        assert_eq!(restored.fault_stats(), original.fault_stats());
        assert_eq!(restored.workers().len(), original.workers().len());

        let second: Vec<PairKey> = (100..140).map(|i| PairKey::new(i, i)).collect();
        let a = original.label_batch(&oracle, &second, Scheme::Hybrid);
        let b = restored.label_batch(&oracle, &second, Scheme::Hybrid);
        assert_eq!(a, b, "restored platform must draw identical answers");
        assert_eq!(original.ledger(), restored.ledger());
        assert_eq!(original.fault_stats(), restored.fault_stats());
    }

    #[test]
    fn fault_draws_are_deterministic_per_seed() {
        let oracle = GoldOracle::from_pairs([]);
        let cfg = FaultConfig {
            hit_expiry_prob: 0.3,
            abandonment_prob: 0.2,
            outage_prob: 0.1,
            ..Default::default()
        };
        let run = || {
            let mut p = faulty(cfg, RetryPolicy::default(), 12);
            let got = p.label_batch(&oracle, &keys(30), Scheme::Hybrid);
            (got, *p.fault_stats(), *p.ledger())
        };
        let (g1, s1, l1) = run();
        let (g2, s2, l2) = run();
        assert_eq!(g1, g2);
        assert_eq!(s1, s2);
        assert_eq!(l1, l2);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use crate::oracle::GoldOracle;

    fn platform_at(price: f64) -> CrowdPlatform {
        CrowdPlatform::new(
            WorkerPool::perfect(5),
            CrowdConfig { price_cents: price, seed: 1, ..Default::default() },
        )
    }

    #[test]
    fn paying_more_is_faster() {
        let oracle = GoldOracle::from_pairs([]);
        let keys: Vec<PairKey> = (0..30).map(|i| PairKey::new(i, i)).collect();
        let mut cheap = platform_at(0.5);
        let mut pricey = platform_at(4.0);
        cheap.label_batch(&oracle, &keys, Scheme::TwoPlusOne);
        pricey.label_batch(&oracle, &keys, Scheme::TwoPlusOne);
        assert!(
            pricey.ledger().simulated_secs < cheap.ledger().simulated_secs,
            "4¢ ({:.0}s) must beat 0.5¢ ({:.0}s)",
            pricey.ledger().simulated_secs,
            cheap.ledger().simulated_secs
        );
        assert!(pricey.ledger().total_cents > cheap.ledger().total_cents);
    }

    #[test]
    fn reference_price_latency_is_base() {
        let p = platform_at(1.0);
        assert!((p.answer_latency_secs() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elasticity_disables_model() {
        let cfg = CrowdConfig { price_cents: 10.0, latency_elasticity: 0.0, ..Default::default() };
        let p = CrowdPlatform::new(WorkerPool::perfect(2), cfg);
        assert!((p.answer_latency_secs() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_hits_do_not_add_up() {
        // 30 questions = 3 HITs in one batch → elapsed ≈ one HIT's time,
        // not three.
        let oracle = GoldOracle::from_pairs([]);
        let keys30: Vec<PairKey> = (0..30).map(|i| PairKey::new(i, i)).collect();
        let keys10: Vec<PairKey> = (100..110).map(|i| PairKey::new(i, i)).collect();
        let mut p30 = platform_at(1.0);
        let mut p10 = platform_at(1.0);
        p30.label_batch(&oracle, &keys30, Scheme::TwoPlusOne);
        p10.label_batch(&oracle, &keys10, Scheme::TwoPlusOne);
        let r = p30.ledger().simulated_secs / p10.ledger().simulated_secs;
        assert!((0.9..1.5).contains(&r), "3 parallel HITs took {r}x one HIT");
    }
}
