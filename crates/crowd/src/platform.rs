//! The simulated crowdsourcing platform Corleone talks to.
//!
//! One call matters: [`CrowdPlatform::label_batch`] — "get this batch of
//! pairs labeled under this voting scheme". Behind it sit the worker pool,
//! HIT packing with the §8.3 cache interaction, the vote resolution of
//! §8.2, and a money/label ledger that the experiment tables report.
//!
//! Faithful to the paper, a batch request may return labels for only a
//! *subset* of the requested pairs: HITs always carry 10 questions, and
//! leftover questions that cannot fill a HIT are dropped when the batch
//! already produced labels (cached or fresh). When a batch would otherwise
//! return nothing, one HIT is padded with repeated questions (duplicates
//! are paid for and discarded) so progress is always made.

use crate::cache::{LabelCache, Strength};
use crate::hit::{Hit, HIT_SIZE};
use crate::oracle::{PairKey, TruthOracle};
use crate::voting::{resolve, Scheme};
use crate::worker::WorkerPool;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Platform configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrowdConfig {
    /// Price per solicited answer, in cents (the paper pays 1¢ per
    /// question for Restaurants/Citations, 2¢ for Products).
    pub price_cents: f64,
    /// RNG seed for worker selection and error draws.
    pub seed: u64,
    /// Mean seconds a worker takes to answer one question when paid
    /// [`Self::reference_price_cents`]. Models the §10 money–time
    /// trade-off: "paying more per question often gets the crowd to
    /// answer faster".
    pub base_latency_secs: f64,
    /// Price at which `base_latency_secs` applies.
    pub reference_price_cents: f64,
    /// Latency elasticity: latency scales by
    /// `(reference_price / price)^elasticity`. 0 disables the model.
    pub latency_elasticity: f64,
}

impl Default for CrowdConfig {
    fn default() -> Self {
        CrowdConfig {
            price_cents: 1.0,
            seed: 0,
            base_latency_secs: 30.0,
            reference_price_cents: 1.0,
            latency_elasticity: 0.5,
        }
    }
}

/// Running totals of crowd activity and spend.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    /// Individual worker answers solicited (each is paid).
    pub answers_solicited: u64,
    /// Question slots sent to the crowd, including padding duplicates.
    pub questions_asked: u64,
    /// HITs posted.
    pub hits_posted: u64,
    /// Distinct pairs labeled by the crowd (excludes cache hits).
    pub pairs_labeled: u64,
    /// Batch requests served entirely or partly from the cache.
    pub cache_hits: u64,
    /// Total spend in cents.
    pub total_cents: f64,
    /// Simulated wall-clock seconds of crowd work. HITs posted in one
    /// batch run in parallel across workers; questions within a HIT are
    /// answered sequentially by each assignee.
    pub simulated_secs: f64,
}

impl Ledger {
    /// Total spend in dollars.
    pub fn total_dollars(&self) -> f64 {
        self.total_cents / 100.0
    }
}

/// The simulated platform: workers + cache + ledger.
#[derive(Debug, Clone)]
pub struct CrowdPlatform {
    workers: WorkerPool,
    cfg: CrowdConfig,
    cache: LabelCache,
    ledger: Ledger,
    rng: StdRng,
}

impl CrowdPlatform {
    /// Create a platform over a worker pool.
    pub fn new(workers: WorkerPool, cfg: CrowdConfig) -> Self {
        let rng = StdRng::seed_from_u64(cfg.seed);
        CrowdPlatform { workers, cfg, cache: LabelCache::new(), ledger: Ledger::default(), rng }
    }

    /// The running ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The label cache (all crowd labels produced so far).
    pub fn cache(&self) -> &LabelCache {
        &self.cache
    }

    /// Label a batch of pairs under `scheme`. Returns `(pair, label)` for
    /// every pair that ended up labeled — possibly a subset of the request
    /// (see module docs). Duplicate pairs in the request are collapsed.
    pub fn label_batch(
        &mut self,
        oracle: &dyn TruthOracle,
        pairs: &[PairKey],
        scheme: Scheme,
    ) -> Vec<(PairKey, bool)> {
        // Deduplicate, preserving request order.
        let mut seen = HashSet::new();
        let pairs: Vec<PairKey> = pairs
            .iter()
            .copied()
            .filter(|p| seen.insert(*p))
            .collect();

        let mut results: Vec<(PairKey, bool)> = Vec::new();
        let mut uncached: Vec<PairKey> = Vec::new();
        let mut any_cached = false;
        for &p in &pairs {
            if let Some(hit) = self.cache.lookup(p, scheme) {
                results.push((p, hit.label));
                any_cached = true;
            } else {
                uncached.push(p);
            }
        }
        if any_cached {
            self.ledger.cache_hits += 1;
        }

        // Pack full HITs; decide about the leftover afterwards. HITs of
        // one batch run concurrently, so batch latency is the slowest HIT.
        let full = uncached.len() / HIT_SIZE * HIT_SIZE;
        let mut batch_secs = 0.0f64;
        for chunk in uncached[..full].chunks(HIT_SIZE) {
            let hit = Hit::pack(chunk);
            let (labeled, secs) = self.run_hit(oracle, &hit, scheme);
            results.extend(labeled);
            batch_secs = batch_secs.max(secs);
        }
        let leftover = &uncached[full..];
        if !leftover.is_empty() && results.is_empty() {
            // The batch would produce nothing; pad one HIT so the caller
            // always makes progress (duplicate slots are paid, discarded).
            let hit = Hit::pack(leftover);
            let (labeled, secs) = self.run_hit(oracle, &hit, scheme);
            results.extend(labeled);
            batch_secs = batch_secs.max(secs);
        }
        self.ledger.simulated_secs += batch_secs;
        results
    }

    /// Label every requested pair, padding HITs as needed. Used where the
    /// protocol requires a complete batch (e.g. the four seed examples).
    pub fn label_all(
        &mut self,
        oracle: &dyn TruthOracle,
        pairs: &[PairKey],
        scheme: Scheme,
    ) -> Vec<(PairKey, bool)> {
        let mut remaining: Vec<PairKey> = pairs.to_vec();
        let mut out = Vec::new();
        let mut guard = 0;
        while !remaining.is_empty() {
            let got = self.label_batch(oracle, &remaining, scheme);
            let got_keys: HashSet<PairKey> = got.iter().map(|(p, _)| *p).collect();
            out.extend(got.iter().copied());
            remaining.retain(|p| !got_keys.contains(p));
            if remaining.is_empty() {
                break;
            }
            // Force the stragglers through a padded HIT.
            let chunk_len = remaining.len().min(HIT_SIZE);
            let chunk: Vec<PairKey> = remaining[..chunk_len].to_vec();
            let hit = Hit::pack(&chunk);
            let (fresh, secs) = self.run_hit(oracle, &hit, scheme);
            self.ledger.simulated_secs += secs;
            let fresh_keys: HashSet<PairKey> = fresh.iter().map(|(p, _)| *p).collect();
            out.extend(fresh.iter().copied());
            remaining.retain(|p| !fresh_keys.contains(p));
            guard += 1;
            assert!(guard < 100_000, "label_all failed to converge");
        }
        out
    }

    /// Seconds one answer takes at the configured pay rate (the §10
    /// money–time model, without jitter).
    pub fn answer_latency_secs(&self) -> f64 {
        if self.cfg.latency_elasticity == 0.0 || self.cfg.base_latency_secs == 0.0 {
            return self.cfg.base_latency_secs;
        }
        let ratio = self.cfg.reference_price_cents / self.cfg.price_cents.max(1e-9);
        self.cfg.base_latency_secs * ratio.powf(self.cfg.latency_elasticity)
    }

    /// Post one HIT and resolve every slot. Duplicate slots (padding) are
    /// paid for but only the first resolution of a pair produces a label.
    /// Returns the labels and the HIT's simulated duration.
    fn run_hit(
        &mut self,
        oracle: &dyn TruthOracle,
        hit: &Hit,
        scheme: Scheme,
    ) -> (Vec<(PairKey, bool)>, f64) {
        self.ledger.hits_posted += 1;
        let mut labeled: Vec<(PairKey, bool)> = Vec::new();
        let mut done: HashSet<PairKey> = HashSet::new();
        let per_answer = self.answer_latency_secs();
        let mut max_assignment_answers = 0u32;
        for &q in &hit.questions {
            self.ledger.questions_asked += 1;
            let outcome = resolve(scheme, &self.workers, oracle.true_label(q), &mut self.rng);
            self.ledger.answers_solicited += u64::from(outcome.answers);
            self.ledger.total_cents += f64::from(outcome.answers) * self.cfg.price_cents;
            max_assignment_answers = max_assignment_answers.max(outcome.answers);
            if done.insert(q) {
                let strength = if outcome.strong { Strength::Strong } else { Strength::Weak };
                self.cache.insert(q, outcome.label, strength);
                self.ledger.pairs_labeled += 1;
                labeled.push((q, outcome.label));
            }
        }
        // Assignments run in parallel across workers; each assignee
        // answers the HIT's 10 questions sequentially. The HIT finishes
        // when its most-solicited question's last answer lands.
        let secs = per_answer * hit.questions.len() as f64
            + per_answer * f64::from(max_assignment_answers.saturating_sub(1));
        (labeled, secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::GoldOracle;

    fn platform(err: f64, seed: u64) -> CrowdPlatform {
        let pool = if err == 0.0 {
            WorkerPool::perfect(5)
        } else {
            WorkerPool::uniform(5, err)
        };
        CrowdPlatform::new(pool, CrowdConfig { price_cents: 1.0, seed, ..Default::default() })
    }

    fn keys(n: u32) -> Vec<PairKey> {
        (0..n).map(|i| PairKey::new(i, i)).collect()
    }

    #[test]
    fn labels_full_batches_exactly() {
        let oracle = GoldOracle::from_pairs([(0, 0), (1, 1)]);
        let mut p = platform(0.0, 1);
        let got = p.label_batch(&oracle, &keys(20), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 20);
        assert!(got.iter().filter(|(_, l)| *l).count() == 2);
        assert_eq!(p.ledger().hits_posted, 2);
        assert_eq!(p.ledger().pairs_labeled, 20);
        // Perfect crowd: 2 answers per question, 1¢ each.
        assert_eq!(p.ledger().total_cents, 40.0);
    }

    #[test]
    fn leftover_dropped_when_batch_produced_labels() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 2);
        let got = p.label_batch(&oracle, &keys(13), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 10, "one full HIT, 3 leftover dropped");
    }

    #[test]
    fn small_batch_padded_not_dropped() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 3);
        let got = p.label_batch(&oracle, &keys(4), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 4, "padded HIT must label all 4 distinct pairs");
        assert_eq!(p.ledger().questions_asked, 10, "padding slots are paid");
        assert_eq!(p.ledger().pairs_labeled, 4);
    }

    #[test]
    fn cache_reused_across_batches() {
        let oracle = GoldOracle::from_pairs([(0, 0)]);
        let mut p = platform(0.0, 4);
        let first = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert_eq!(first.len(), 10);
        let cents_before = p.ledger().total_cents;
        let second = p.label_batch(&oracle, &keys(10), Scheme::TwoPlusOne);
        assert_eq!(second.len(), 10);
        assert_eq!(p.ledger().total_cents, cents_before, "all from cache");
        assert_eq!(p.ledger().cache_hits, 1);
    }

    #[test]
    fn paper_packing_rule_15_cached_of_20() {
        // §8.3: k = 15 cached of a 20-example batch (k > 10) → return only
        // the cached 15, ignore the remaining 5.
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 5);
        let cached: Vec<PairKey> = (0..15).map(|i| PairKey::new(i, i)).collect();
        p.label_all(&oracle, &cached, Scheme::TwoPlusOne);
        let hits_before = p.ledger().hits_posted;
        let batch = keys(20); // 15 cached + 5 new
        let got = p.label_batch(&oracle, &batch, Scheme::TwoPlusOne);
        assert_eq!(got.len(), 15);
        assert_eq!(p.ledger().hits_posted, hits_before, "no new HIT posted");
    }

    #[test]
    fn paper_packing_rule_7_cached_of_20() {
        // §8.3: k = 7 cached (k ≤ 10) → one HIT of 10 fresh questions,
        // return 10 + 7 = 17, drop the other 3.
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 6);
        let cached: Vec<PairKey> = (0..7).map(|i| PairKey::new(i, i)).collect();
        p.label_all(&oracle, &cached, Scheme::TwoPlusOne);
        let got = p.label_batch(&oracle, &keys(20), Scheme::TwoPlusOne);
        assert_eq!(got.len(), 17);
    }

    #[test]
    fn weak_cache_entry_does_not_serve_strong_request() {
        let oracle = GoldOracle::from_pairs([(0, 0)]);
        let mut p = platform(0.0, 7);
        p.label_all(&oracle, &[PairKey::new(0, 0)], Scheme::TwoPlusOne);
        let labeled_before = p.ledger().pairs_labeled;
        p.label_all(&oracle, &[PairKey::new(0, 0)], Scheme::StrongMajority);
        assert!(p.ledger().pairs_labeled > labeled_before, "must re-ask the crowd");
    }

    #[test]
    fn label_all_labels_everything() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.2, 8);
        let got = p.label_all(&oracle, &keys(37), Scheme::Hybrid);
        let distinct: HashSet<PairKey> = got.iter().map(|(p, _)| *p).collect();
        assert_eq!(distinct.len(), 37);
    }

    #[test]
    fn noisy_crowd_costs_more_than_perfect() {
        let oracle = GoldOracle::from_pairs([(0, 0), (1, 1), (2, 2)]);
        let mut perfect = platform(0.0, 9);
        let mut noisy = platform(0.3, 9);
        perfect.label_batch(&oracle, &keys(30), Scheme::StrongMajority);
        noisy.label_batch(&oracle, &keys(30), Scheme::StrongMajority);
        assert!(noisy.ledger().total_cents > perfect.ledger().total_cents);
    }

    #[test]
    fn duplicates_in_request_collapse() {
        let oracle = GoldOracle::from_pairs([]);
        let mut p = platform(0.0, 10);
        let mut req = keys(10);
        req.extend(keys(10));
        let got = p.label_batch(&oracle, &req, Scheme::TwoPlusOne);
        assert_eq!(got.len(), 10);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;
    use crate::oracle::GoldOracle;

    fn platform_at(price: f64) -> CrowdPlatform {
        CrowdPlatform::new(
            WorkerPool::perfect(5),
            CrowdConfig { price_cents: price, seed: 1, ..Default::default() },
        )
    }

    #[test]
    fn paying_more_is_faster() {
        let oracle = GoldOracle::from_pairs([]);
        let keys: Vec<PairKey> = (0..30).map(|i| PairKey::new(i, i)).collect();
        let mut cheap = platform_at(0.5);
        let mut pricey = platform_at(4.0);
        cheap.label_batch(&oracle, &keys, Scheme::TwoPlusOne);
        pricey.label_batch(&oracle, &keys, Scheme::TwoPlusOne);
        assert!(
            pricey.ledger().simulated_secs < cheap.ledger().simulated_secs,
            "4¢ ({:.0}s) must beat 0.5¢ ({:.0}s)",
            pricey.ledger().simulated_secs,
            cheap.ledger().simulated_secs
        );
        assert!(pricey.ledger().total_cents > cheap.ledger().total_cents);
    }

    #[test]
    fn reference_price_latency_is_base() {
        let p = platform_at(1.0);
        assert!((p.answer_latency_secs() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn zero_elasticity_disables_model() {
        let cfg = CrowdConfig { price_cents: 10.0, latency_elasticity: 0.0, ..Default::default() };
        let p = CrowdPlatform::new(WorkerPool::perfect(2), cfg);
        assert!((p.answer_latency_secs() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_hits_do_not_add_up() {
        // 30 questions = 3 HITs in one batch → elapsed ≈ one HIT's time,
        // not three.
        let oracle = GoldOracle::from_pairs([]);
        let keys30: Vec<PairKey> = (0..30).map(|i| PairKey::new(i, i)).collect();
        let keys10: Vec<PairKey> = (100..110).map(|i| PairKey::new(i, i)).collect();
        let mut p30 = platform_at(1.0);
        let mut p10 = platform_at(1.0);
        p30.label_batch(&oracle, &keys30, Scheme::TwoPlusOne);
        p10.label_batch(&oracle, &keys10, Scheme::TwoPlusOne);
        let r = p30.ledger().simulated_secs / p10.ledger().simulated_secs;
        assert!((0.9..1.5).contains(&r), "3 parallel HITs took {r}x one HIT");
    }
}
