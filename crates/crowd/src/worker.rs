//! The random worker model (Ipeirotis et al. 2010), as used by the paper
//! for sensitivity analysis (§9.3) and parameter setting (§9.4).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A pool of simulated crowd workers. Each worker `w` answers a yes/no
/// match question with the true label except with probability
/// `error_rate(w)`, independently per question — the *random worker model*.
///
/// The pool also models AMT qualifications coarsely: construction helpers
/// clamp error rates, mirroring the paper's use of approval-rate filters to
/// keep spammers out.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkerPool {
    error_rates: Vec<f64>,
}

impl WorkerPool {
    /// A pool of perfectly accurate workers (0% error).
    pub fn perfect(n: usize) -> Self {
        Self::uniform(n, 0.0)
    }

    /// A pool of `n` workers sharing one error rate.
    ///
    /// # Panics
    /// Panics if `error_rate` is outside `[0, 0.5)` — a worker wrong more
    /// than half the time is adversarial, not noisy — or `n == 0`.
    pub fn uniform(n: usize, error_rate: f64) -> Self {
        assert!(n > 0, "pool must have at least one worker");
        assert!(
            (0.0..0.5).contains(&error_rate),
            "error rate must be in [0, 0.5), got {error_rate}"
        );
        WorkerPool { error_rates: vec![error_rate; n] }
    }

    /// A heterogeneous pool: `n` workers with error rates spread uniformly
    /// over `[center - spread, center + spread]`, clamped to `[0, 0.45]`.
    pub fn heterogeneous<R: Rng>(n: usize, center: f64, spread: f64, rng: &mut R) -> Self {
        assert!(n > 0, "pool must have at least one worker");
        let error_rates = (0..n)
            .map(|_| {
                let e = center + rng.gen_range(-spread..=spread);
                e.clamp(0.0, 0.45)
            })
            .collect();
        WorkerPool { error_rates }
    }

    /// Build a pool from explicit per-worker error rates (used by the
    /// qualification screen).
    ///
    /// # Panics
    /// Panics if `rates` is empty or any rate is outside `[0, 0.5)`.
    pub fn from_error_rates(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "pool must have at least one worker");
        assert!(
            rates.iter().all(|r| (0.0..0.5).contains(r)),
            "error rates must be in [0, 0.5)"
        );
        WorkerPool { error_rates: rates }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.error_rates.len()
    }

    /// True if the pool is empty (never constructible via the helpers).
    pub fn is_empty(&self) -> bool {
        self.error_rates.is_empty()
    }

    /// Remove one worker from the pool (attrition under fault injection).
    /// The departing worker is the pool's worst (highest error rate) —
    /// marketplaces shed unreliable workers first. Refuses to shrink below
    /// two workers so voting always has a quorum; returns whether a worker
    /// actually left.
    pub fn remove_one(&mut self) -> bool {
        if self.error_rates.len() <= 2 {
            return false;
        }
        let worst = self
            .error_rates
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("pool is non-empty");
        self.error_rates.remove(worst);
        true
    }

    /// Mean error rate of the pool.
    pub fn mean_error_rate(&self) -> f64 {
        self.error_rates.iter().sum::<f64>() / self.error_rates.len() as f64
    }

    /// One answer to a question with the given true label, from a worker
    /// drawn uniformly from the pool.
    pub fn answer<R: Rng>(&self, true_label: bool, rng: &mut R) -> bool {
        self.answer_tagged(true_label, rng).1
    }

    /// Like [`Self::answer`], but also reveals which worker answered —
    /// needed by aggregation methods that model workers individually
    /// (e.g. [`crate::aggregate::dawid_skene`]).
    pub fn answer_tagged<R: Rng>(&self, true_label: bool, rng: &mut R) -> (usize, bool) {
        let w = rng.gen_range(0..self.error_rates.len());
        let wrong = rng.gen_bool(self.error_rates[w]);
        (w, true_label ^ wrong)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn perfect_workers_never_err() {
        let pool = WorkerPool::perfect(5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(pool.answer(true, &mut rng));
            assert!(!pool.answer(false, &mut rng));
        }
    }

    #[test]
    fn error_rate_is_respected_statistically() {
        let pool = WorkerPool::uniform(10, 0.2);
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let wrong = (0..n)
            .filter(|_| !pool.answer(true, &mut rng))
            .count() as f64;
        let rate = wrong / n as f64;
        assert!((rate - 0.2).abs() < 0.02, "observed {rate}");
    }

    #[test]
    fn heterogeneous_rates_clamped() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = WorkerPool::heterogeneous(100, 0.4, 0.2, &mut rng);
        assert_eq!(pool.len(), 100);
        assert!(pool.mean_error_rate() <= 0.45);
    }

    #[test]
    #[should_panic(expected = "error rate must be in [0, 0.5)")]
    fn adversarial_rate_rejected() {
        WorkerPool::uniform(3, 0.6);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn empty_pool_rejected() {
        WorkerPool::uniform(0, 0.1);
    }
}
