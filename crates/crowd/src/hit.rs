//! HITs — Human Intelligence Tasks (paper §8.1, Fig. 4).
//!
//! Questions are packed 10 to a HIT ("crowds often prefer many examples per
//! HIT, to reduce their overhead"), and each question is rendered as the
//! side-by-side attribute comparison of Fig. 4, followed by the user's
//! matching instruction.

use crate::oracle::PairKey;
use similarity::{Record, Schema};

/// Number of questions in every HIT.
pub const HIT_SIZE: usize = 10;

/// One HIT: an ordered batch of questions posted to the crowd together.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hit {
    /// The pairs asked about. Always exactly [`HIT_SIZE`] entries; a
    /// partial batch is padded by repeating questions (turkers avoid
    /// "small" HITs — §8.3 — so the platform never posts one).
    pub questions: Vec<PairKey>,
}

impl Hit {
    /// Pack a slice of at most [`HIT_SIZE`] distinct questions into a HIT,
    /// padding by cycling through the slice if it is short.
    ///
    /// # Panics
    /// Panics if `questions` is empty or longer than [`HIT_SIZE`].
    pub fn pack(questions: &[PairKey]) -> Self {
        assert!(!questions.is_empty(), "a HIT needs at least one question");
        assert!(
            questions.len() <= HIT_SIZE,
            "a HIT holds at most {HIT_SIZE} questions"
        );
        let padded = questions
            .iter()
            .cycle()
            .take(HIT_SIZE)
            .copied()
            .collect();
        Hit { questions: padded }
    }

    /// Distinct questions in the HIT (paid duplicates removed).
    pub fn distinct(&self) -> Vec<PairKey> {
        let mut qs = self.questions.clone();
        qs.sort();
        qs.dedup();
        qs
    }
}

/// Render one question as the Fig. 4-style side-by-side table, e.g.:
///
/// ```text
/// Do these records match?
///   brand | Kingston                          | Kingston
///   name  | Kingston HyperX 4GB Kit 2 x 2GB   | Kingston HyperX 12GB Kit 3 x 4GB
/// Instruction: match if they represent the same product.
/// [ Yes ] [ No ] [ Not sure ]
/// ```
pub fn render_question(schema: &Schema, a: &Record, b: &Record, instruction: &str) -> String {
    let name_w = schema
        .attrs
        .iter()
        .map(|at| at.name.len())
        .max()
        .unwrap_or(0);
    let mut out = String::from("Do these records match?\n");
    for (i, attr) in schema.attrs.iter().enumerate() {
        out.push_str(&format!(
            "  {:name_w$} | {} | {}\n",
            attr.name,
            a.value(i),
            b.value(i),
        ));
    }
    out.push_str(&format!("Instruction: {instruction}\n"));
    out.push_str("[ Yes ] [ No ] [ Not sure ]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use similarity::{Attribute, Value};

    #[test]
    fn pack_full_hit() {
        let qs: Vec<PairKey> = (0..10).map(|i| PairKey::new(i, i)).collect();
        let h = Hit::pack(&qs);
        assert_eq!(h.questions.len(), HIT_SIZE);
        assert_eq!(h.distinct().len(), 10);
    }

    #[test]
    fn pack_pads_short_batches() {
        let qs = vec![PairKey::new(1, 2), PairKey::new(3, 4)];
        let h = Hit::pack(&qs);
        assert_eq!(h.questions.len(), HIT_SIZE);
        assert_eq!(h.distinct().len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one question")]
    fn pack_rejects_empty() {
        Hit::pack(&[]);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn pack_rejects_oversize() {
        let qs: Vec<PairKey> = (0..11).map(|i| PairKey::new(i, i)).collect();
        Hit::pack(&qs);
    }

    #[test]
    fn renders_figure4_style_question() {
        let schema = Schema::new(vec![
            Attribute::text("brand"),
            Attribute::text("name"),
        ]);
        let a = Record::new(0, vec!["Kingston".into(), "HyperX 4GB".into()]);
        let b = Record::new(1, vec!["Kingston".into(), Value::Null]);
        let s = render_question(&schema, &a, &b, "same product?");
        assert!(s.starts_with("Do these records match?"));
        assert!(s.contains("brand | Kingston | Kingston"));
        assert!(s.contains("<null>"));
        assert!(s.contains("Instruction: same product?"));
        assert!(s.contains("[ Yes ] [ No ] [ Not sure ]"));
    }
}
