//! The paper's flagship scenario (§1, Example 3.1): matching electronics
//! products between two retail catalogs — the workload that motivates
//! hands-off crowdsourcing, since a retailer with 500+ categories cannot
//! afford a developer per category.
//!
//! This example generates the synthetic Amazon↔Walmart Products dataset,
//! runs the full Corleone pipeline phase by phase, and narrates what each
//! module did: the blocking rules learned from the crowd, the active
//! learner's stopping pattern, the accuracy estimate, and the difficult
//! pairs located.
//!
//! Run with: `cargo run --release --example products_pipeline`

use corleone::task::task_from_parts;
use corleone::{BlockerConfig, CorleoneConfig, Engine};
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
use datagen::{products, GenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A scaled-down Products task (2% of paper size keeps this under a
    // minute; raise the scale for the real thing).
    let ds = products::generate(GenConfig { scale: 0.05, seed: 7 });
    let stats = ds.stats();
    println!(
        "catalog A: {} products, catalog B: {} products, gold matches: {} ({:.4}% of A × B)",
        stats.n_a,
        stats.n_b,
        stats.n_matches,
        stats.positive_density * 100.0,
    );

    let task = task_from_parts(
        ds.table_a.clone(),
        ds.table_b.clone(),
        &ds.instruction,
        ds.seeds.positive,
        ds.seeds.negative,
    );
    let gold = GoldOracle::from_pairs(ds.gold.iter().copied());

    // Product questions pay 2 cents (more attributes to read — §9).
    let mut worker_rng = StdRng::seed_from_u64(99);
    let workers = WorkerPool::heterogeneous(50, 0.05, 0.03, &mut worker_rng);
    let mut platform = CrowdPlatform::new(
        workers,
        CrowdConfig { price_cents: ds.price_cents, seed: 7, ..Default::default() },
    );

    // Force blocking so the example demonstrates rule learning.
    let cfg = CorleoneConfig {
        blocker: BlockerConfig { t_b: 40_000, ..Default::default() },
        ..Default::default()
    };
    let report = Engine::new(cfg)
        .with_seed(7)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();

    println!("\n== Blocker ==");
    println!(
        "Cartesian product {} pairs → umbrella set {} pairs ({} rules applied)",
        report.blocker.cartesian,
        report.blocker.umbrella_size,
        report.blocker.rules_applied.len()
    );
    for (rule, prec) in &report.blocker.rules_applied {
        println!("  blocking rule (est. precision {:.3}): {rule}", prec);
    }
    if let Some(r) = report.blocking_recall {
        println!("blocking recall: {:.1}%", r * 100.0);
    }

    for it in &report.iterations {
        println!("\n== Iteration {} ==", it.iteration);
        println!(
            "matcher: {} AL iterations over {} pairs, stopped by {} ({} pairs labeled, ${:.2})",
            it.matcher_al_iterations,
            it.region_size,
            it.matcher_stop,
            it.matcher_pairs_labeled,
            it.matcher_cost_cents / 100.0
        );
        println!(
            "estimate: P={:.1}% R={:.1}% F1={:.1}% (margins ±{:.3}/±{:.3}, {} reduction rules)",
            it.estimate.precision * 100.0,
            it.estimate.recall * 100.0,
            it.estimate.f1 * 100.0,
            it.estimate.eps_p,
            it.estimate.eps_r,
            it.estimate.rules_used
        );
        let feats: Vec<String> = it
            .top_features
            .iter()
            .map(|(n, v)| format!("{n} ({:.0}%)", v * 100.0))
            .collect();
        println!("model looks at: {}", feats.join(", "));
        if let Some(t) = it.true_prf {
            println!("truth:    P={:.1}% R={:.1}% F1={:.1}%", t.precision * 100.0, t.recall * 100.0, t.f1 * 100.0);
        }
        if let Some(loc) = &it.locator {
            println!(
                "locator: {} difficult of {} ({} neg + {} pos precise rules){}",
                loc.difficult_size,
                loc.input_size,
                loc.negative_rules_used,
                loc.positive_rules_used,
                loc.termination
                    .as_ref()
                    .map(|t| format!(" — stop: {t}"))
                    .unwrap_or_default()
            );
        }
    }

    println!("\n== Result ==");
    println!(
        "{} matches returned, total crowd cost ${:.2}, {} pairs labeled",
        report.predicted_matches.len(),
        report.total_cost_dollars(),
        report.total_pairs_labeled
    );
    if let Some(t) = report.final_true {
        println!(
            "final true accuracy: P={:.1}% R={:.1}% F1={:.1}%",
            t.precision * 100.0,
            t.recall * 100.0,
            t.f1 * 100.0
        );
    }
}
