//! Quickstart: hands-off entity matching in ~40 lines.
//!
//! Exactly what a Corleone user supplies (paper §3): two tables, a short
//! matching instruction, and four seed examples. Everything else — blocking,
//! training, accuracy estimation, iteration — is done by the (simulated)
//! crowd.
//!
//! Run with: `cargo run --release --example quickstart`

use corleone::task::task_from_parts;
use corleone::{CorleoneConfig, Engine};
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
use similarity::{Attribute, Schema, Table, Value};
use std::sync::Arc;

fn main() {
    // 1. The two tables to match.
    let schema = Arc::new(Schema::new(vec![
        Attribute::text("name"),
        Attribute::text("city"),
    ]));
    let rows_a: Vec<Vec<Value>> = (0..30)
        .map(|i| vec![Value::Text(format!("Golden Dragon {i}")), "Madison".into()])
        .collect();
    let mut rows_b: Vec<Vec<Value>> = (0..30)
        .map(|i| vec![Value::Text(format!("golden dragon no. {i}")), "Madison".into()])
        .collect();
    rows_b.push(vec!["Blue Lotus Cafe".into(), "Chicago".into()]);
    let table_a = Table::new("directory_a", schema.clone(), rows_a);
    let table_b = Table::new("directory_b", schema, rows_b);

    // 2. Instruction + four seed examples (2 matching, 2 non-matching).
    let task = task_from_parts(
        table_a,
        table_b,
        "These records describe restaurants; match if same location.",
        [(0, 0), (1, 1)],
        [(0, 30), (2, 5)],
    );

    // 3. A simulated crowd standing in for Mechanical Turk: 25 workers
    //    with ~5% answer error, 1 cent per question. The GoldOracle is
    //    what the simulated workers consult before (noisily) answering.
    let gold = GoldOracle::from_pairs((0..30).map(|i| (i, i)));
    let workers = WorkerPool::uniform(25, 0.05);
    let mut platform = CrowdPlatform::new(workers, CrowdConfig::default());

    // 4. Run hands-off. `try_run` is the non-panicking entry point: a run
    //    that cannot complete (e.g. under an injected-fault crowd) comes
    //    back as a typed `CorleoneError` instead of a panic.
    let engine = Engine::new(CorleoneConfig::small()).with_seed(1);
    let report = engine
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .try_run()
        .expect("clean simulated crowd always completes");

    println!("matches found: {}", report.predicted_matches.len());
    for pair in report.predicted_matches.iter().take(5) {
        println!(
            "  A[{}] ↔ B[{}]: {} ↔ {}",
            pair.a,
            pair.b,
            task.table_a.record(pair.a).value(0),
            task.table_b.record(pair.b).value(0),
        );
    }
    let est = report.final_estimate.clone().expect("engine always estimates");
    println!(
        "estimated accuracy: P={:.1}% (±{:.3}) R={:.1}% (±{:.3}) F1={:.1}%",
        est.precision * 100.0,
        est.eps_p,
        est.recall * 100.0,
        est.eps_r,
        est.f1 * 100.0
    );
    if let Some(truth) = report.final_true {
        println!("true accuracy:      F1={:.1}%", truth.f1 * 100.0);
    }
    println!(
        "crowd cost: ${:.2} for {} labeled pairs (termination: {:?})",
        report.total_cost_dollars(),
        report.total_pairs_labeled,
        report.termination
    );
}
