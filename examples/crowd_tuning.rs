//! Inside the crowd layer (paper §8): what a HIT looks like (Fig. 4), how
//! the three voting schemes trade accuracy against cost under a noisy
//! crowd, and how the label cache reuses answers across modules.
//!
//! Run with: `cargo run --release --example crowd_tuning`

use crowd::hit::render_question;
use crowd::voting::{resolve, Scheme};
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, PairKey, WorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use similarity::{Attribute, Record, Schema};

fn main() {
    // --- Fig. 4: the question a turker sees.
    let schema = Schema::new(vec![
        Attribute::text("brand"),
        Attribute::text("name"),
        Attribute::text("model no."),
    ]);
    let p1 = Record::new(
        0,
        vec![
            "Kingston".into(),
            "Kingston HyperX 4GB Kit 2 x 2GB".into(),
            "KHX1800C9D3K2/4G".into(),
        ],
    );
    let p2 = Record::new(
        1,
        vec![
            "Kingston".into(),
            "Kingston HyperX 12GB Kit 3 x 4GB".into(),
            "KHX1600C9D3K3/12GX".into(),
        ],
    );
    println!("--- A HIT question (paper Fig. 4) ---\n");
    println!(
        "{}",
        render_question(&schema, &p1, &p2, "match if they represent the same product")
    );

    // --- §8.2: voting-scheme shootout under a 20%-error crowd.
    println!("--- Voting schemes under a 20%-error crowd (5000 questions) ---\n");
    let pool = WorkerPool::uniform(40, 0.2);
    for (name, scheme) in [
        ("2+1 majority  ", Scheme::TwoPlusOne),
        ("strong majority", Scheme::StrongMajority),
        ("hybrid (paper) ", Scheme::Hybrid),
    ] {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 5000;
        let mut correct = 0u32;
        let mut answers = 0u32;
        for i in 0..n {
            let truth = i % 10 == 0; // 10% positives, EM-style skew
            let out = resolve(scheme, &pool, truth, &mut rng);
            if out.label == truth {
                correct += 1;
            }
            answers += out.answers;
        }
        println!(
            "{name}  accuracy {:.2}%  answers/question {:.2}",
            correct as f64 / n as f64 * 100.0,
            answers as f64 / n as f64
        );
    }
    println!("\nThe hybrid gets strong-majority accuracy where it matters (positives,");
    println!("which perturb recall estimates) at nearly 2+1 cost on the negative bulk.");

    // --- §8.3: label-cache reuse across modules.
    println!("\n--- Label cache reuse ---\n");
    let gold = GoldOracle::from_pairs((0..10).map(|i| (i, i)));
    let mut platform = CrowdPlatform::new(WorkerPool::perfect(10), CrowdConfig::default());
    let batch: Vec<PairKey> = (0..20).map(|i| PairKey::new(i, i)).collect();
    platform.label_batch(&gold, &batch, Scheme::TwoPlusOne);
    let spent_once = platform.ledger().total_cents;
    platform.label_batch(&gold, &batch, Scheme::TwoPlusOne); // all cached
    println!(
        "first batch cost {:.0}¢; repeat batch cost {:.0}¢ (cache hits: {})",
        spent_once,
        platform.ledger().total_cents - spent_once,
        platform.ledger().cache_hits
    );
}
