//! The "crowdsourcing for the masses" scenario (paper §1): a journalist
//! wants to match two lists of political donors and can pay the crowd a
//! modest amount, but cannot write code or blocking rules.
//!
//! This example shows the full journey with a *custom* schema (the three
//! built-in datasets are not special): build tables from raw rows, supply
//! the instruction and four examples, set a hard budget, and run.
//!
//! Run with: `cargo run --release --example custom_dataset`

use corleone::task::task_from_parts;
use corleone::{CorleoneConfig, Engine};
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use similarity::{Attribute, Schema, Table, Value};
use std::sync::Arc;

/// Donor lists: name, employer, city, amount.
fn donor_tables() -> (Table, Table, GoldOracle) {
    let schema = Arc::new(Schema::new(vec![
        Attribute::text("name"),
        Attribute::text("employer"),
        Attribute::text("city"),
        Attribute::number("amount"),
    ]));
    let first = ["Mary", "John", "Ana", "Wei", "Omar", "Sofia", "Liam", "Noah"];
    let last = ["Keller", "Osei", "Tanaka", "Alvarez", "Novak", "Okafor", "Lindqvist", "Haddad"];
    let employers = ["Acme Corp", "City Hospital", "Lakeview School", "Self employed", "Harbor Logistics"];
    let cities = ["Springfield", "Riverton", "Lakewood"];

    let mut rng = StdRng::seed_from_u64(11);
    let mut rows_a = Vec::new();
    for i in 0..60 {
        rows_a.push(vec![
            Value::Text(format!("{} {}", first[i % 8], last[(i / 8) % 8])),
            Value::Text(employers[i % 5].to_string()),
            Value::Text(cities[i % 3].to_string()),
            Value::Number(((i as f64) * 13.0) % 990.0 + 10.0),
        ]);
    }
    // List B: 35 of the 60 donors reappear with formatting quirks, plus
    // 20 fresh donors.
    let mut rows_b = Vec::new();
    let mut gold = Vec::new();
    for (bid, aid) in (0..35usize).enumerate() {
        let a = &rows_a[aid];
        let name = a[0].as_text().unwrap();
        let (f, l) = name.split_once(' ').unwrap();
        let initial: String = f.chars().take(1).collect();
        let quirky = if bid % 2 == 0 {
            format!("{l}, {f}")
        } else {
            format!("{initial}. {l}")
        };
        rows_b.push(vec![
            Value::Text(quirky),
            a[1].clone(),
            a[2].clone(),
            Value::Number(a[3].as_number().unwrap() + rng.gen_range(-0.5..0.5)),
        ]);
        gold.push((aid as u32, bid as u32));
    }
    for i in 0..20 {
        rows_b.push(vec![
            Value::Text(format!("{} {}", first[(i + 3) % 8], last[(i + 5) % 8])),
            Value::Text(employers[(i + 2) % 5].to_string()),
            Value::Text(cities[(i + 1) % 3].to_string()),
            Value::Number(rng.gen_range(10.0..1000.0)),
        ]);
    }
    let a = Table::new("donors_2022", schema.clone(), rows_a);
    let b = Table::new("donors_2023", schema, rows_b);
    (a, b, GoldOracle::from_pairs(gold))
}

fn main() {
    let (table_a, table_b, gold) = donor_tables();
    let task = task_from_parts(
        table_a,
        table_b,
        "These are political donation records; match if they are the same \
         person (names may be abbreviated or reordered).",
        [(0, 0), (1, 1)],
        [(0, 40), (7, 3)],
    );

    let workers = WorkerPool::uniform(30, 0.05);
    let mut platform = CrowdPlatform::new(workers, CrowdConfig { price_cents: 1.0, seed: 3, ..Default::default() });

    // The journalist caps spend at $5 (paper §3: "run until a budget has
    // been exhausted" is a supported mode).
    let mut cfg = CorleoneConfig::small();
    cfg.engine.budget_cents = Some(500.0);
    let report = Engine::new(cfg)
        .with_seed(3)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();

    println!("donor matches found: {}", report.predicted_matches.len());
    for p in report.predicted_matches.iter().take(8) {
        println!(
            "  {:24} ↔ {}",
            task.table_a.record(p.a).value(0).to_string(),
            task.table_b.record(p.b).value(0),
        );
    }
    if let Some(t) = report.final_true {
        println!(
            "accuracy: P={:.1}% R={:.1}% F1={:.1}%",
            t.precision * 100.0,
            t.recall * 100.0,
            t.f1 * 100.0
        );
    }
    println!(
        "spent ${:.2} of the $5.00 budget ({} pairs labeled)",
        report.total_cost_dollars(),
        report.total_pairs_labeled
    );
    if std::env::var("DEBUG_PHASES").is_ok() {
        for it in &report.iterations {
            eprintln!(
                "iter {}: matcher {:.0}c ({} AL iters, stop {}), estimator {:.0}c, locator {:?}",
                it.iteration, it.matcher_cost_cents, it.matcher_al_iterations,
                it.matcher_stop, it.estimate.cost_cents,
                it.locator.as_ref().map(|l| l.cost_cents)
            );
        }
    }
}
