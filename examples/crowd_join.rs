//! Hands-off crowdsourced join (paper §10): using Corleone as the join
//! operator of a crowdsourced RDBMS.
//!
//! Two "tables" from different systems — a CRM export and a billing
//! export — must be joined on *entity*, not on a key. `hands_off_join`
//! runs the whole EM workflow and returns materialized joined rows plus
//! an estimated precision/recall for the join predicate, the provenance a
//! query optimizer would want.
//!
//! Run with: `cargo run --release --example crowd_join`

use corleone::task::task_from_parts;
use corleone::{hands_off_join, CorleoneConfig, Engine};
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
use similarity::{Attribute, Schema, Table, Value};
use std::sync::Arc;

fn main() {
    let schema = Arc::new(Schema::new(vec![
        Attribute::text("company"),
        Attribute::text("contact"),
        Attribute::number("zip"),
    ]));
    let companies = [
        "Acme Manufacturing", "Globex Industrial", "Initech Software", "Umbrella Labs",
        "Stark Components", "Wayne Logistics", "Tyrell Analytics", "Cyberdyne Robotics",
        "Soylent Foods", "Oscorp Chemicals", "Hooli Cloud", "Pied Piper Compression",
        "Vandelay Imports", "Wonka Confections", "Duff Brewing", "Sirius Cybernetics",
        "Aperture Optics", "BlackMesa Research", "Monarch Shipping", "Prestige Worldwide",
    ];
    let contacts = [
        "R. Vasquez", "M. Chen", "A. Gupta", "L. Novak", "T. Brennan", "S. Ito",
        "D. Okafor", "E. Lindqvist", "P. Romano", "K. Haddad",
    ];

    // CRM rows: full names. Billing rows: abbreviated, suffixed variants.
    let crm: Vec<Vec<Value>> = companies
        .iter()
        .enumerate()
        .map(|(i, c)| {
            vec![
                Value::Text(c.to_string()),
                Value::Text(contacts[i % contacts.len()].to_string()),
                Value::Number(53700.0 + (i as f64) * 7.0),
            ]
        })
        .collect();
    let billing: Vec<Vec<Value>> = companies
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let head = c.split_whitespace().next().unwrap();
            vec![
                Value::Text(format!("{head} Inc.")),
                Value::Text(contacts[i % contacts.len()].to_string()),
                Value::Number(53700.0 + (i as f64) * 7.0),
            ]
        })
        .collect();
    let table_a = Table::new("crm_accounts", schema.clone(), crm);
    let table_b = Table::new("billing_accounts", schema, billing);

    let task = task_from_parts(
        table_a,
        table_b,
        "Join rows that refer to the same company account.",
        [(0, 0), (1, 1)],
        [(0, 5), (3, 9)],
    );
    let gold = GoldOracle::from_pairs((0..20).map(|i| (i, i)));
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(30, 0.05),
        CrowdConfig { price_cents: 1.0, seed: 12, ..Default::default() },
    );
    let engine = Engine::new(CorleoneConfig::small()).with_seed(12);

    let result = hands_off_join(&engine, &task, &mut platform, &gold);
    println!("SELECT * FROM crm_accounts a CROWD-JOIN billing_accounts b");
    println!("-- {} joined rows\n", result.rows.len());
    for row in result.rows.iter().take(8) {
        println!(
            "  {:28} | {:14} ⋈ {:22} | {}",
            row.left.value(0).to_string(),
            row.left.value(1).to_string(),
            row.right.value(0).to_string(),
            row.right.value(1),
        );
    }
    println!(
        "\njoin-predicate estimate: precision {:.1}%, recall {:.1}%",
        result.estimated_precision().unwrap_or(0.0) * 100.0,
        result.estimated_recall().unwrap_or(0.0) * 100.0
    );
    println!(
        "crowd cost: ${:.2} ({} pairs labeled)",
        result.report.total_cost_dollars(),
        result.report.total_pairs_labeled
    );
}
